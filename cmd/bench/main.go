// Command bench runs the repository's core micro-benchmarks and writes a
// machine-readable BENCH_core.json mapping each benchmark to its measured
// ns/op, B/op and allocs/op. It seeds the performance trajectory: successive
// revisions regenerate the file and diff it to catch regressions.
//
// With -compare BASELINE.json it additionally gates: after measuring, each
// benchmark is checked against the baseline and the process exits nonzero
// when a stable metric regresses past -tolerance. allocs/op is gated always
// (allocation counts are deterministic); ns/op only for benchmarks whose
// baseline is at or above -noise-floor, because sub-millisecond timings are
// scheduler noise on shared CI runners. Benchmarks present in the baseline
// but missing from the run fail the gate (a silently deleted benchmark is a
// regression too); new benchmarks are reported and ignored.
//
// With -in RESULTS.json it skips measuring entirely and gates a previous
// run's output: CI measures once, then re-gates the same numbers at a
// tighter tolerance on the hot-path benchmarks without paying for a second
// run (and without the two gates disagreeing about what was measured).
//
// With -cpuprofile DIR or -memprofile DIR each selected top-level benchmark
// runs in its own `go test` invocation so the profiles don't smear
// together: DIR/<Benchmark>.cpu.pprof, DIR/<Benchmark>.mem.pprof, plus the
// test binary DIR/<Benchmark>.test for pprof symbolization.
//
// It shells out to `go test -bench`, so it needs the Go toolchain — the
// same environment that builds the repository.
//
// Examples:
//
//	bench                         # core set -> BENCH_core.json
//	bench -bench 'BenchmarkFGP.*' # custom selection
//	bench -filter 'WatchIngest'   # core set restricted to matching names
//	bench -benchtime 5s -out perf.json
//	bench -short -out /tmp/smoke.json  # CI smoke: one fast iteration each
//	bench -compare BENCH_core.json -tolerance 0.25   # CI regression gate
//	bench -in /tmp/BENCH_ci.json -compare BENCH_core.json -tolerance 0.05 \
//	      -filter 'ContinuousAdmission'  # re-gate a prior run, no re-run
//	bench -bench BenchmarkEngineContinuousAdmission -cpuprofile /tmp/prof \
//	      -memprofile /tmp/prof          # per-benchmark pprof output
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// coreSet selects the substrate, pass-engine and session benchmarks; the
// Exp* experiment benchmarks regenerate whole report tables and are too
// slow for a default run.
const coreSet = "BenchmarkStreamPass|BenchmarkFGP|BenchmarkSession|BenchmarkEngine|BenchmarkServer|BenchmarkCluster|BenchmarkL0|BenchmarkReservoir|BenchmarkExact|BenchmarkDegeneracy|BenchmarkDecompose"

// Measurement is one benchmark result.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		benchRe     = flag.String("bench", coreSet, "benchmark selection regexp passed to go test -bench")
		benchtime   = flag.String("benchtime", "1s", "per-benchmark measuring time (go test -benchtime)")
		count       = flag.Int("count", 1, "runs per benchmark; the minimum ns/op is kept")
		pkg         = flag.String("pkg", ".", "package pattern to benchmark")
		out         = flag.String("out", "BENCH_core.json", "output JSON path")
		short       = flag.Bool("short", false, "smoke mode: one iteration per benchmark, numbers are build-health only")
		compare     = flag.String("compare", "", "baseline JSON to gate against; exit 1 on regression past tolerance")
		tolerance   = flag.Float64("tolerance", 0.25, "allowed relative allocs/op regression (with -compare)")
		nsTolerance = flag.Float64("ns-tolerance", 0, "allowed relative ns/op regression (0: same as -tolerance); set looser when the baseline was measured on different hardware")
		noiseFloor  = flag.Float64("noise-floor", 1e6, "baseline ns/op below which timing is not gated (with -compare)")
		filterRe    = flag.String("filter", "", "regexp restricting the run to matching benchmark names; with -compare, only baseline entries matching it are required to be present")
		inFile      = flag.String("in", "", "read measurements from a previous -out JSON instead of running benchmarks; use to re-gate one run at a different tolerance")
		cpuProfile  = flag.String("cpuprofile", "", "directory for per-benchmark CPU profiles; each top-level benchmark runs in its own go test invocation")
		memProfile  = flag.String("memprofile", "", "directory for per-benchmark memory profiles; may be combined with -cpuprofile")
	)
	flag.Parse()
	var filter *regexp.Regexp
	if *filterRe != "" {
		re, err := regexp.Compile(*filterRe)
		if err != nil {
			log.Fatalf("bad -filter regexp %q: %v", *filterRe, err)
		}
		filter = re
		if *benchRe == coreSet {
			// -filter narrows the default set; an explicit -bench keeps its
			// own selection and -filter only scopes the baseline gate.
			*benchRe = *filterRe
		}
	}
	if *short && *benchtime == "1s" {
		// One iteration per benchmark: enough to prove every benchmark still
		// builds and runs; the resulting numbers are not comparable.
		*benchtime = "1x"
	}

	var results map[string]Measurement
	switch {
	case *inFile != "":
		// Re-gate a previous run's measurements without re-running. The
		// numbers being gated are exactly the numbers that were measured —
		// a second measuring run could disagree with the first for reasons
		// that have nothing to do with the code under test.
		if *cpuProfile != "" || *memProfile != "" {
			log.Fatal("-in does not run benchmarks; profiling flags need a measuring run")
		}
		data, err := os.ReadFile(*inFile)
		if err != nil {
			log.Fatalf("read -in results: %v", err)
		}
		if err := json.Unmarshal(data, &results); err != nil {
			log.Fatalf("parse -in results %s: %v", *inFile, err)
		}
		if len(results) == 0 {
			log.Fatalf("no measurements in %s", *inFile)
		}
		fmt.Printf("bench: loaded %d results from %s\n", len(results), *inFile)
	case *cpuProfile != "" || *memProfile != "":
		var err error
		results, err = runProfiled(*benchRe, *benchtime, *count, *pkg, *cpuProfile, *memProfile)
		if err != nil {
			log.Fatal(err)
		}
	default:
		buf, err := runGoBench([]string{"-bench", *benchRe, "-benchmem",
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg})
		if err != nil {
			log.Fatal(err)
		}
		results, err = parseBench(buf)
		if err != nil {
			log.Fatal(err)
		}
	}
	if len(results) == 0 {
		log.Fatalf("no benchmark results matched %q", *benchRe)
	}
	if *inFile == "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-44s %14.1f ns/op %10.0f allocs/op\n",
			name, results[name].NsPerOp, results[name].AllocsPerOp)
	}
	if *inFile == "" {
		fmt.Printf("bench: wrote %d results to %s\n", len(results), *out)
	}

	if *compare != "" {
		if *short {
			log.Fatal("-compare is meaningless with -short (one-iteration numbers)")
		}
		if *nsTolerance == 0 {
			*nsTolerance = *tolerance
		}
		regressions := compareBaseline(*compare, results, *tolerance, *nsTolerance, *noiseFloor, filter)
		if regressions > 0 {
			log.Fatalf("%d regression(s) past tolerance (allocs %.0f%%, ns %.0f%%) vs %s",
				regressions, *tolerance*100, *nsTolerance*100, *compare)
		}
		fmt.Printf("bench: no regressions vs %s (allocs tol %.0f%%, ns tol %.0f%% above %.0fms)\n",
			*compare, *tolerance*100, *nsTolerance*100, *noiseFloor/1e6)
	}
}

// runGoBench shells out to `go test -run ^$ <args...>` and returns its
// stdout for parsing.
func runGoBench(args []string) (*bytes.Buffer, error) {
	full := append([]string{"test", "-run", "^$"}, args...)
	cmd := exec.Command("go", full...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(full, " "))
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench failed: %v", err)
	}
	return &buf, nil
}

// listBenchmarks returns the top-level benchmark functions matching re in
// pkg, in the order `go test -list` reports them. Sub-benchmarks
// (b.Run cases) are not listed; they run, and are profiled, under their
// parent.
func listBenchmarks(re, pkg string) ([]string, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-list", re, pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -list failed: %v", err)
	}
	var names []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if name := strings.TrimSpace(sc.Text()); strings.HasPrefix(name, "Benchmark") {
			names = append(names, name)
		}
	}
	return names, sc.Err()
}

// runProfiled measures each matching top-level benchmark in its own
// `go test` invocation so each gets its own CPU/memory profile — a single
// shared invocation would fold every benchmark into one indistinguishable
// profile. Results are merged into the same Measurement map a plain run
// produces, so -out and -compare behave identically.
func runProfiled(benchRe, benchtime string, count int, pkg, cpuDir, memDir string) (map[string]Measurement, error) {
	for _, dir := range []string{cpuDir, memDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
	}
	binDir := cpuDir
	if binDir == "" {
		binDir = memDir
	}
	names, err := listBenchmarks(benchRe, pkg)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no benchmarks matched %q in %s", benchRe, pkg)
	}
	results := make(map[string]Measurement)
	for _, name := range names {
		args := []string{"-bench", "^" + name + "$", "-benchmem",
			"-benchtime", benchtime, "-count", strconv.Itoa(count),
			"-o", filepath.Join(binDir, name+".test")}
		if cpuDir != "" {
			args = append(args, "-cpuprofile", filepath.Join(cpuDir, name+".cpu.pprof"))
		}
		if memDir != "" {
			args = append(args, "-memprofile", filepath.Join(memDir, name+".mem.pprof"))
		}
		args = append(args, pkg)
		buf, err := runGoBench(args)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		part, err := parseBench(buf)
		if err != nil {
			return nil, err
		}
		for k, v := range part {
			results[k] = v
		}
	}
	fmt.Fprintf(os.Stderr, "bench: profiles for %d benchmark(s) under %s\n", len(names), binDir)
	return results, nil
}

// compareBaseline gates results against a baseline file and returns the
// number of regressions. allocs/op is gated for every benchmark at
// tolerance; ns/op at nsTolerance, and only where the baseline is at or
// above noiseFloor. Gains and sub-floor timing moves are informational.
// With a filter, baseline entries not matching it are skipped entirely —
// a filtered run deliberately omits them, which must not read as deletion.
func compareBaseline(path string, results map[string]Measurement, tolerance, nsTolerance, noiseFloor float64, filter *regexp.Regexp) int {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("read baseline: %v", err)
	}
	var base map[string]Measurement
	if err := json.Unmarshal(data, &base); err != nil {
		log.Fatalf("parse baseline %s: %v", path, err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	fail := func(name, metric string, baseV, curV float64) {
		regressions++
		fmt.Printf("REGRESSION %-40s %s %.1f -> %.1f (%+.1f%%)\n",
			name, metric, baseV, curV, 100*(curV-baseV)/baseV)
	}
	for _, name := range names {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		b := base[name]
		cur, ok := results[name]
		if !ok {
			regressions++
			fmt.Printf("REGRESSION %-40s missing from this run (deleted or renamed without regenerating the baseline)\n", name)
			continue
		}
		// Allocation counts are deterministic per op: gate them always. The
		// +0.5 absolute slack keeps 0-alloc baselines meaningful (any new
		// allocation fails) without tripping on fractional reporting of
		// sub-1 averages.
		if cur.AllocsPerOp > b.AllocsPerOp*(1+tolerance)+0.5 {
			fail(name, "allocs/op", b.AllocsPerOp, cur.AllocsPerOp)
		}
		// Timings gate only above the noise floor.
		if b.NsPerOp >= noiseFloor && cur.NsPerOp > b.NsPerOp*(1+nsTolerance) {
			fail(name, "ns/op", b.NsPerOp, cur.NsPerOp)
		}
	}
	for name := range results {
		if _, ok := base[name]; !ok {
			fmt.Printf("note: %s is new (not in baseline)\n", name)
		}
	}
	return regressions
}

// parseBench extracts results from `go test -bench` output lines such as
//
//	BenchmarkFGPInsertionPass-8   104   22885547 ns/op   23029059 B/op   117741 allocs/op
//
// Repeated measurements of one benchmark (-count > 1) keep the fastest run.
func parseBench(r *bytes.Buffer) (map[string]Measurement, error) {
	results := make(map[string]Measurement)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			// Strip the -GOMAXPROCS suffix so keys are stable across hosts.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("unparseable benchmark line: %q", line)
		}
		m := Measurement{NsPerOp: ns, Iterations: iters}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if prev, ok := results[name]; !ok || m.NsPerOp < prev.NsPerOp {
			results[name] = m
		}
	}
	return results, sc.Err()
}
