// Command experiments regenerates the tables and figures of EXPERIMENTS.md
// (the paper has no empirical section; DESIGN.md §5 defines the suite from
// its theorems).
//
// Examples:
//
//	experiments            # run everything
//	experiments -run E03   # one experiment
//	experiments -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"streamcount/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run  = flag.String("run", "all", "experiment ID (E01..E13) or 'all'")
		seed = flag.Int64("seed", 2022, "random seed")
	)
	flag.Parse()

	ids := experiments.IDs()
	if *run != "all" {
		ids = []string{*run}
	}
	for _, id := range ids {
		start := time.Now()
		if err := experiments.Run(id, *seed, os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
