// Command genstream generates the synthetic workloads the experiments use
// and writes them in the edge-list format cmd/streamcount reads.
//
// Examples:
//
//	genstream -type er -n 1000 -m 10000 > er.txt
//	genstream -type ba -n 1000 -k 3 -plant-k4 5 > ba.txt
//	genstream -type grid -rows 30 -cols 30 > grid.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"streamcount/internal/gen"
	"streamcount/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genstream: ")
	var (
		typ     = flag.String("type", "er", "er | ba | chunglu | grid | cycle | complete")
		n       = flag.Int64("n", 1000, "vertices (er, ba, chunglu, cycle, complete)")
		m       = flag.Int64("m", 5000, "edges (er)")
		k       = flag.Int64("k", 3, "attachment parameter (ba)")
		gamma   = flag.Float64("gamma", 2.5, "power-law exponent (chunglu)")
		avgDeg  = flag.Float64("avgdeg", 8, "average degree (chunglu)")
		rows    = flag.Int64("rows", 30, "grid rows")
		cols    = flag.Int64("cols", 30, "grid cols")
		plantK  = flag.Int64("plant-k4", 0, "plant this many disjoint K4s")
		plantC5 = flag.Int64("plant-c5", 0, "plant this many disjoint 5-cycles")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	var g *graph.Graph
	switch *typ {
	case "er":
		g = gen.ErdosRenyiGNM(rng, *n, *m)
	case "ba":
		g = gen.BarabasiAlbert(rng, *n, *k)
	case "chunglu":
		g = gen.ChungLu(rng, *n, *gamma, *avgDeg)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "cycle":
		g = gen.Cycle(*n)
	case "complete":
		g = gen.Complete(*n)
	default:
		log.Fatalf("unknown -type %q", *typ)
	}
	if *plantK > 0 {
		gen.PlantCliques(rng, g, 4, *plantK)
	}
	if *plantC5 > 0 {
		gen.PlantCycles(rng, g, 5, *plantC5)
	}
	if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
		log.Fatal(err)
	}
	lambda, _ := graph.Degeneracy(g)
	fmt.Fprintf(os.Stderr, "generated %s: n=%d m=%d degeneracy=%d\n", *typ, g.N(), g.M(), lambda)
}
