// Command streamcountd is the streamcount network daemon: an HTTP/JSON
// service over the long-lived query engine, with live append-only
// ingestion. Clients create versioned streams, append edge batches at any
// time, and submit typed queries; concurrent queries share replay passes
// per admission generation, and each generation pins the stream version
// current at its barrier, so every response is bit-identical to a
// standalone run at its reported (seed, stream_version).
//
// API (see internal/server and DESIGN.md §7):
//
//	POST /v1/streams                   {"name":"web","n":100000}
//	POST /v1/streams/{name}/edges      {"updates":[{"u":1,"v":2},...]}
//	POST /v1/queries                   {"stream":"web","kind":"count",
//	                                    "pattern":"triangle","trials":100000,
//	                                    "seed":7}   (?wait=false for async)
//	GET  /v1/queries/{id}              poll an async query
//	POST /v1/watches                   standing query -> SSE event stream
//	GET  /v1/watches                   list active watches
//	GET  /v1/streams/{name}/stats      version, passes, metadata
//	GET  /healthz                      liveness + registry stats (503 draining)
//	GET  /v1/cluster                   versioned cluster map (cluster mode)
//	POST /v1/cluster/transfer          {"stream":"web","target":"n2"}: move a
//	                                   stream to another node (cluster mode)
//
// A watch (POST /v1/watches) holds a Server-Sent-Events response open and
// streams one "result" event per evaluation as ingestion advances — each
// bit-identical to a standalone run at its reported stream_version and the
// derived seed — with heartbeat comments while idle. The client package is
// the Go SDK for all of the above.
//
// A SIGINT/SIGTERM drains gracefully: new work is rejected with 503,
// standing queries end with a terminal "end" event, admitted queries
// finish (bounded by -drain-timeout), then the engine shuts down.
//
// With -segment-dir, streams are durable (DESIGN.md §9): appends persist to
// checksummed segments under a per-stream manifest, and a restart — clean or
// after a crash — rebuilds every stream from disk before serving, truncating
// torn tails and refusing corrupt manifests. During recovery, mutating
// endpoints answer 503 with Retry-After and /healthz reports "recovering".
// -sync additionally fsyncs sealed writes for durability against power loss.
//
// With -result-cache-mb, the engine memoizes completed query results keyed
// by (stream, version, query fingerprint, seed): resubmitting a query a
// pinned generation already answered returns the identical bytes with zero
// stream passes. Appends never invalidate anything — entries are
// version-pinned — so the cache is purely size/TTL-bounded (LRU).
// With -tenant-config, requests are attributed to the tenant named by their
// X-Tenant header and admitted through per-tenant token buckets; a tenant
// at quota gets a typed 429 quota_exhausted with Retry-After, and tenant
// priorities order admission inside a shared generation window.
//
// With -cluster-node and -cluster-peers, a static set of daemons shards
// streams by consistent hashing (DESIGN.md §11): stream-scoped requests on
// a non-owner answer a typed 421 wrong_node redirect naming the owner, the
// client package's Cluster routes around them, and POST /v1/cluster/transfer
// rebalances a sealed stream's checksummed segment directory onto another
// node with no version gap and bit-identical results.
//
// Examples:
//
//	streamcountd -addr :8470 -window 25ms
//	streamcountd -segment-dir /var/lib/streamcount -parallel 8
//	streamcountd -segment-dir /var/lib/streamcount -sync
//	streamcountd -addr :8471 -segment-dir /tmp/sc1 -cluster-node n1 \
//	    -cluster-peers n1=localhost:8471,n2=localhost:8472,n3=localhost:8473
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamcount/internal/server"
	"streamcount/internal/tenant"
	"streamcount/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamcountd: ")
	var (
		addr         = flag.String("addr", ":8470", "listen address")
		window       = flag.Duration("window", 25*time.Millisecond, "admission window: how long an idle engine waits to batch queries into one shared-replay generation")
		parallel     = flag.Int("parallel", 0, "default pass-engine workers per query (0: GOMAXPROCS)")
		segmentDir   = flag.String("segment-dir", "", "directory for on-disk stream segments (empty: streams stay in memory)")
		segmentSize  = flag.Int("segment-size", 0, "updates per stream segment (0: library default)")
		syncWrites   = flag.Bool("sync", false, "fsync stream segments on every sealed write (durable against power loss, not just process crash)")
		readTimeout  = flag.Duration("read-header-timeout", 10*time.Second, "HTTP read-header timeout")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for admitted queries before canceling them")
		heartbeat    = flag.Duration("watch-heartbeat", server.DefaultWatchHeartbeat, "SSE heartbeat interval for standing queries")
		writeTimeout = flag.Duration("watch-write-timeout", server.DefaultWatchWriteTimeout, "per-event SSE write deadline; a watch that cannot accept an event within this ends with a slow_consumer terminal event (<=0: no deadline)")
		checkpointMB = flag.Int("watch-checkpoint-mb", server.DefaultWatchCheckpointMB, "watch checkpoint cache bound in MiB: resident per-stream indexes serving standing queries incrementally (negative or absurd values are rejected at startup)")
		maxWatches   = flag.Int("max-watches", 0, "maximum concurrently active standing queries (0: library default; negative or absurd values are rejected at startup)")
		clusterNode  = flag.String("cluster-node", "", "this node's cluster member ID; enables cluster mode (requires -cluster-peers)")
		clusterPeers = flag.String("cluster-peers", "", "comma-separated cluster members as id=addr pairs (bare addr doubles as the ID); must be identical on every node and include this node")
		rcacheMB     = flag.Int("result-cache-mb", 0, "cross-generation result cache bound in MiB: repeated version-pinned queries are served memoized with zero stream passes (0: disabled)")
		rcacheTTL    = flag.Duration("result-cache-ttl", 0, "TTL on memoized results (0: no TTL, entries live until evicted by the size bound)")
		tenantConfig = flag.String("tenant-config", "", "JSON file of per-tenant quotas and priorities (see internal/tenant); empty admits everything")
	)
	flag.Parse()
	peers, err := parsePeers(*clusterPeers)
	if err != nil {
		log.Fatal(err)
	}
	var tenants tenant.Config
	if *tenantConfig != "" {
		if tenants, err = tenant.LoadConfig(*tenantConfig); err != nil {
			log.Fatal(err)
		}
	}
	opts := server.Options{
		Window:            *window,
		Parallelism:       *parallel,
		SegmentDir:        *segmentDir,
		SegmentSize:       *segmentSize,
		Sync:              *syncWrites,
		WatchHeartbeat:    *heartbeat,
		WatchWriteTimeout: *writeTimeout,
		WatchCheckpointMB: *checkpointMB,
		MaxWatches:        *maxWatches,
		ClusterNode:       *clusterNode,
		ClusterPeers:      peers,
		ResultCacheMB:     *rcacheMB,
		ResultCacheTTL:    *rcacheTTL,
		Tenants:           tenants,
	}
	if err := run(*addr, *readTimeout, *drainTimeout, opts); err != nil {
		log.Fatal(err)
	}
}

// parsePeers parses the -cluster-peers member list: comma-separated
// "id=addr" pairs, with a bare "addr" doubling as its own ID. Validation
// beyond shape (duplicate IDs, membership of -cluster-node) happens in
// server.New, which owns cluster construction.
func parsePeers(s string) ([]wire.ClusterNode, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var nodes []wire.ClusterNode
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, found := strings.Cut(part, "=")
		if !found {
			id, addr = part, part
		}
		if id == "" || addr == "" {
			return nil, fmt.Errorf("bad -cluster-peers entry %q (want id=addr or addr)", part)
		}
		nodes = append(nodes, wire.ClusterNode{ID: id, Addr: addr})
	}
	return nodes, nil
}

// run owns every resource with a cleanup path, so an error return unwinds
// them (main's log.Fatal would skip deferred cancels — see the lostcancel
// audit note in cmd/streamcount).
func run(addr string, readTimeout, drainTimeout time.Duration, opts server.Options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := server.New(opts)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: readTimeout,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s (admission window %s)", ln.Addr(), opts.Window)
	if opts.ClusterNode != "" {
		log.Printf("cluster node %q (%d members)", opts.ClusterNode, len(opts.ClusterPeers))
	}

	// Recovery from -segment-dir runs in the background; until it finishes
	// the server answers mutations with 503 + Retry-After and /healthz says
	// "recovering". Surface the outcome in the log either way.
	if opts.SegmentDir != "" {
		log.Printf("recovering streams from %s", opts.SegmentDir)
		go func() {
			if err := srv.WaitReady(ctx); err != nil {
				log.Printf("RECOVERY FAILED: %v (persisted streams unavailable; fix %s and restart)", err, opts.SegmentDir)
				return
			}
			log.Printf("recovery complete; serving")
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop routing (healthz 503), reject new work, let the
	// HTTP server finish in-flight requests, then wait out async queries.
	log.Printf("signal received; draining (timeout %s)", drainTimeout)
	srv.Drain()
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(dctx); err != nil {
		return err
	}
	log.Printf("drained cleanly")
	return nil
}
