package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"streamcount"
	"streamcount/internal/stream"
)

// watchSource is a live input: the vertex count plus a feeder that pushes
// update batches into the engine until the input is exhausted or ctx fires.
type watchSource struct {
	n    int64
	feed func(ctx context.Context, app func([]streamcount.Update) error) error
}

// fileSource replays the input file into batches of o.watchBatch updates.
func fileSource(o options) (*watchSource, error) {
	st, err := readStream(o.input, o.updates)
	if err != nil {
		return nil, err
	}
	sl, err := stream.Collect(st)
	if err != nil {
		return nil, err
	}
	ups := sl.Updates()
	batch := o.watchBatch
	if batch <= 0 {
		batch = 1024
	}
	return &watchSource{
		n: st.N(),
		feed: func(ctx context.Context, app func([]streamcount.Update) error) error {
			for i := 0; i < len(ups); i += batch {
				if ctx.Err() != nil {
					return nil // signal/timeout: stop feeding, exit cleanly
				}
				if err := app(ups[i:min(i+batch, len(ups))]); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}

// stdinSource reads the update-list format from stdin: a header line "n",
// then one "+ u v" / "- u v" (or bare "u v") line per update, each appended
// — and therefore published to the watches — as it arrives.
func stdinSource() (*watchSource, error) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stdin: missing \"n\" header line")
	}
	head := strings.Fields(sc.Text())
	if len(head) == 0 {
		return nil, fmt.Errorf("stdin: empty header line, want \"n\"")
	}
	n, err := strconv.ParseInt(head[0], 10, 64)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("stdin: bad vertex count %q", head[0])
	}
	return &watchSource{
		n: n,
		feed: func(ctx context.Context, app func([]streamcount.Update) error) error {
			for sc.Scan() {
				if ctx.Err() != nil {
					return nil
				}
				line := strings.TrimSpace(sc.Text())
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				up, err := parseUpdateLine(line)
				if err != nil {
					return err
				}
				if err := app([]streamcount.Update{up}); err != nil {
					return err
				}
			}
			return sc.Err()
		},
	}, nil
}

func parseUpdateLine(line string) (streamcount.Update, error) {
	f := strings.Fields(line)
	op := streamcount.Insert
	switch {
	case len(f) == 3 && f[0] == "+":
		f = f[1:]
	case len(f) == 3 && f[0] == "-":
		op = streamcount.Delete
		f = f[1:]
	case len(f) == 2:
	default:
		return streamcount.Update{}, fmt.Errorf("bad update line %q, want \"+ u v\" / \"- u v\" / \"u v\"", line)
	}
	u, err1 := strconv.ParseInt(f[0], 10, 64)
	v, err2 := strconv.ParseInt(f[1], 10, 64)
	if err1 != nil || err2 != nil {
		return streamcount.Update{}, fmt.Errorf("bad update line %q", line)
	}
	return streamcount.Update{Edge: streamcount.Edge{U: u, V: v}, Op: op}, nil
}

// runWatch is the -watch mode: standing queries over a live appendable
// stream fed from the input, one printed row per watch event. It returns 0
// when the input was followed to its end (or a signal stopped the run
// cleanly) and 1 when a pattern failed or a watch terminated with an error.
func runWatch(ctx context.Context, o options) int {
	src, err := sourceFor(o)
	if err != nil {
		log.Print(err)
		return 1
	}

	app, err := streamcount.NewAppendableStream(src.n, streamcount.AppendableOptions{})
	if err != nil {
		log.Print(err)
		return 1
	}
	e := streamcount.NewEngine(app)
	defer e.Close()

	names := splitPatterns(o.pat)
	if len(names) == 0 {
		log.Print("no pattern given")
		return 1
	}
	var wopts []streamcount.WatchOption
	if o.watchEvery {
		wopts = append(wopts, streamcount.WatchEveryVersion())
	}

	var (
		printMu sync.Mutex
		failed  atomic.Bool
		final   atomic.Int64 // final published version; valid once fed closes
		fed     = make(chan struct{})
		wg      sync.WaitGroup
	)
	final.Store(-1)
	fmt.Printf("watch      n=%d, %d pattern(s), %s\n\n", src.n, len(names), policyName(o.watchEvery))
	fmt.Printf("%-10s %10s %14s %7s %9s\n", "pattern", "version", "estimate", "passes", "trials")

	for i, name := range names {
		p, err := streamcount.PatternByName(name)
		if err != nil {
			log.Print(err)
			return 1
		}
		q := streamcount.CountQuery(p,
			streamcount.WithTrials(o.trials),
			streamcount.WithEpsilon(o.eps),
			streamcount.WithLowerBound(o.lower),
			streamcount.WithSeed(o.seed+int64(i)),
			streamcount.WithParallelism(o.paral),
		)
		sub, err := streamcount.Watch(ctx, e, "", q, wopts...)
		if err != nil {
			log.Print(err)
			return 1
		}
		wg.Add(1)
		go func(name string, sub *streamcount.Subscription[*streamcount.CountResult]) {
			defer wg.Done()
			defer sub.Close()
			last := int64(0) // version 0 (the empty prefix) is never evaluated
			fedCh := fed
			for {
				select {
				case ev, ok := <-sub.Events():
					if !ok {
						reportWatchEnd(&printMu, &failed, name, sub.Err())
						return
					}
					if ev.Err != nil {
						reportWatchEnd(&printMu, &failed, name, ev.Err)
						return
					}
					printMu.Lock()
					fmt.Printf("%-10s %10d %14.1f %7d %9d\n",
						name, ev.StreamVersion, ev.Result.Value, ev.Result.Passes, ev.Result.Trials)
					printMu.Unlock()
					last = ev.StreamVersion
					if fedCh == nil && last >= final.Load() {
						return // followed the input to its end
					}
				case <-fedCh:
					fedCh = nil
					if last >= final.Load() {
						return
					}
				}
			}
		}(name, sub)
	}

	// Feed the input on its own goroutine; every append publishes a version
	// the watches react to. The goroutine matters for cancellation: a stdin
	// feed blocks in Scan until the next line arrives, so a SIGINT while the
	// pipe is open but idle must not hang the exit path behind it — the
	// watches end through ctx, we stop waiting on the feed, and the blocked
	// read dies with the process.
	feedDone := make(chan error, 1)
	go func() {
		feedDone <- src.feed(ctx, func(ups []streamcount.Update) error {
			_, err := e.Append("", ups)
			return err
		})
	}()
	var feedErr error
	select {
	case feedErr = <-feedDone:
	case <-ctx.Done():
	}
	v, _ := e.StreamVersion("")
	final.Store(v)
	close(fed)
	if feedErr != nil {
		log.Print(feedErr)
		failed.Store(true)
	}
	wg.Wait()
	if failed.Load() {
		return 1
	}
	return 0
}

func sourceFor(o options) (*watchSource, error) {
	if o.input == "-" {
		return stdinSource()
	}
	return fileSource(o)
}

func policyName(every bool) string {
	if every {
		return "every version"
	}
	return "latest wins"
}

// reportWatchEnd prints a watch's terminal state. Cancellation (Ctrl-C,
// -timeout) is the clean way to stop following a stream, not a failure.
func reportWatchEnd(mu *sync.Mutex, failed *atomic.Bool, name string, err error) {
	mu.Lock()
	defer mu.Unlock()
	switch {
	case err == nil, errors.Is(err, streamcount.ErrWatchClosed):
	case errors.Is(err, streamcount.ErrCanceled):
		fmt.Printf("%-10s watch stopped (timeout or signal)\n", name)
	default:
		fmt.Printf("%-10s watch failed: %v\n", name, err)
		failed.Store(true)
	}
}
