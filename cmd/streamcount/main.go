// Command streamcount estimates the number of copies of a pattern H in a
// graph stream read from a file, using the paper's 3-pass algorithm
// (Theorem 17 insertion-only / Theorem 1 turnstile) or the 5r-pass
// low-degeneracy clique counter (Theorem 2).
//
// Input formats:
//
//	graph:   header "n m", then one "u v" line per edge (insertion-only)
//	updates: header "n", then "+ u v" / "- u v" lines (turnstile)
//
// A comma-separated -pattern list submits every pattern to one shared-replay
// session: all estimators ride the same 3 passes instead of 3 passes each.
//
// Examples:
//
//	streamcount -input graph.txt -pattern triangle -trials 100000
//	streamcount -input graph.txt -pattern triangle,C5,K4 -trials 100000
//	streamcount -input updates.txt -updates -pattern C5 -trials 500000
//	streamcount -input graph.txt -cliques 4 -eps 0.3 -lower 50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"streamcount"
	"streamcount/internal/graph"
	"streamcount/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamcount: ")
	var (
		input   = flag.String("input", "", "input file (required)")
		updates = flag.Bool("updates", false, "input is a turnstile update list, not an edge list")
		pat     = flag.String("pattern", "triangle", "pattern name or comma-separated list: triangle, C<k>, K<r>, S<k>, P<k>, paw, diamond")
		trials  = flag.Int("trials", 0, "parallel sampler instances (0: derive from -eps/-lower)")
		eps     = flag.Float64("eps", 0.1, "target relative error (used when -trials is 0)")
		lower   = flag.Float64("lower", 0, "lower bound on #H (used when -trials is 0)")
		cliques = flag.Int("cliques", 0, "if r >= 3: use the Theorem 2 low-degeneracy K_r counter")
		lambda  = flag.Int64("lambda", 0, "degeneracy bound for -cliques (0: compute exactly)")
		exactF  = flag.Bool("exact", false, "also print the exact count (loads the graph into memory)")
		seed    = flag.Int64("seed", 1, "random seed")
		paral   = flag.Int("parallel", 0, "pass-engine workers (0: GOMAXPROCS, 1: sequential; same estimate either way)")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}

	st, err := readStream(*input, *updates)
	if err != nil {
		log.Fatal(err)
	}

	if *cliques >= 3 {
		runCliques(st, *cliques, *lambda, *eps, *lower, *seed, *paral, *exactF)
		return
	}

	names := strings.Split(*pat, ",")
	pats := make([]*streamcount.Pattern, 0, len(names))
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, err := streamcount.PatternByName(name)
		if err != nil {
			log.Fatal(err)
		}
		pats = append(pats, p)
	}
	if len(pats) == 0 {
		log.Fatal("no pattern given")
	}
	if len(pats) == 1 {
		runSingle(st, pats[0], *trials, *eps, *lower, *seed, *paral, *exactF)
		return
	}
	runSession(st, pats, *trials, *eps, *lower, *seed, *paral, *exactF)
}

func runSingle(st streamcount.Stream, p *streamcount.Pattern, trials int, eps, lower float64, seed int64, paral int, exactF bool) {
	est, err := streamcount.Estimate(st, streamcount.Config{
		Pattern:     p,
		Trials:      trials,
		Epsilon:     eps,
		LowerBound:  lower,
		EdgeBound:   st.Len(),
		Seed:        seed,
		Parallelism: paral,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern    %s (rho=%.1f)\n", p.Name(), p.Rho())
	fmt.Printf("stream     n=%d, %d updates, m=%d\n", st.N(), st.Len(), est.M)
	fmt.Printf("estimate   %.1f\n", est.Value)
	fmt.Printf("passes     %d\n", est.Passes)
	fmt.Printf("trials     %d\n", est.Trials)
	fmt.Printf("space      %d words\n", est.SpaceWords)
	if exactF {
		g, err := stream.Materialize(st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exact      %d\n", streamcount.ExactCount(g, p))
	}
}

// runSession serves every pattern through one shared-replay session and
// prints a result table with per-job and total (shared) pass counts.
func runSession(st streamcount.Stream, pats []*streamcount.Pattern, trials int, eps, lower float64, seed int64, paral int, exactF bool) {
	s := streamcount.NewSession(st)
	handles := make([]*streamcount.JobHandle, len(pats))
	for i, p := range pats {
		handles[i] = s.Submit(streamcount.Job{Kind: streamcount.JobEstimate, Config: streamcount.Config{
			Pattern:     p,
			Trials:      trials,
			Epsilon:     eps,
			LowerBound:  lower,
			EdgeBound:   st.Len(),
			Seed:        seed + int64(i),
			Parallelism: paral,
		}})
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	var g *graph.Graph
	if exactF {
		var err error
		g, err = stream.Materialize(st)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stream     n=%d, %d updates\n\n", st.N(), st.Len())
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	header := "pattern\trho\testimate\tpasses\ttrials\tspace(words)"
	if exactF {
		header += "\texact"
	}
	fmt.Fprintln(w, header)
	var sumPasses int64
	for i, h := range handles {
		est, err := h.Estimate()
		if err != nil {
			log.Fatal(err)
		}
		sumPasses += est.Passes
		row := fmt.Sprintf("%s\t%.1f\t%.1f\t%d\t%d\t%d",
			pats[i].Name(), pats[i].Rho(), est.Value, est.Passes, est.Trials, est.SpaceWords)
		if exactF {
			row += fmt.Sprintf("\t%d", streamcount.ExactCount(g, pats[i]))
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	fmt.Printf("\nshared passes  %d (vs %d if each job replayed privately)\n", s.Passes(), sumPasses)
}

func runCliques(st streamcount.Stream, r int, lambda int64, eps, lower float64, seed int64, paral int, exactF bool) {
	var g *graph.Graph
	if lambda == 0 || exactF || lower == 0 {
		var err error
		g, err = stream.Materialize(st)
		if err != nil {
			log.Fatal(err)
		}
	}
	if lambda == 0 {
		lambda, _ = streamcount.Degeneracy(g)
	}
	if lower == 0 {
		p, _ := streamcount.PatternByName(fmt.Sprintf("K%d", r))
		exact := streamcount.ExactCount(g, p)
		if exact == 0 {
			fmt.Println("graph contains no such cliques")
			return
		}
		lower = float64(exact) / 2
		fmt.Printf("(no -lower given: using exact/2 = %.1f)\n", lower)
	}
	est, err := streamcount.EstimateCliques(st, streamcount.CliqueConfig{
		R: r, Lambda: lambda, Epsilon: eps, LowerBound: lower, Seed: seed,
		Parallelism: paral,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern    K%d (degeneracy λ=%d)\n", r, lambda)
	fmt.Printf("estimate   %.1f\n", est.Value)
	fmt.Printf("passes     %d (bound 5r = %d)\n", est.Passes, 5*r)
	fmt.Printf("space      %d words\n", est.SpaceWords)
	if exactF {
		p, _ := streamcount.PatternByName(fmt.Sprintf("K%d", r))
		fmt.Printf("exact      %d\n", streamcount.ExactCount(g, p))
	}
}

func readStream(path string, updateFormat bool) (streamcount.Stream, error) {
	if updateFormat {
		// File-backed streams are replayed from disk on every pass, so
		// update streams larger than memory still work.
		return stream.OpenFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := streamcount.ReadGraph(f)
	if err != nil {
		return nil, err
	}
	return streamcount.StreamFromGraph(g), nil
}
