// Command streamcount estimates the number of copies of a pattern H in a
// graph stream read from a file, using the paper's 3-pass algorithm
// (Theorem 17 insertion-only / Theorem 1 turnstile) or the 5r-pass
// low-degeneracy clique counter (Theorem 2).
//
// Input formats:
//
//	graph:   header "n m", then one "u v" line per edge (insertion-only)
//	updates: header "n", then "+ u v" / "- u v" lines (turnstile)
//
// Examples:
//
//	streamcount -input graph.txt -pattern triangle -trials 100000
//	streamcount -input updates.txt -updates -pattern C5 -trials 500000
//	streamcount -input graph.txt -cliques 4 -eps 0.3 -lower 50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"streamcount"
	"streamcount/internal/graph"
	"streamcount/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamcount: ")
	var (
		input   = flag.String("input", "", "input file (required)")
		updates = flag.Bool("updates", false, "input is a turnstile update list, not an edge list")
		pat     = flag.String("pattern", "triangle", "pattern name: triangle, C<k>, K<r>, S<k>, P<k>, paw, diamond")
		trials  = flag.Int("trials", 0, "parallel sampler instances (0: derive from -eps/-lower)")
		eps     = flag.Float64("eps", 0.1, "target relative error (used when -trials is 0)")
		lower   = flag.Float64("lower", 0, "lower bound on #H (used when -trials is 0)")
		cliques = flag.Int("cliques", 0, "if r >= 3: use the Theorem 2 low-degeneracy K_r counter")
		lambda  = flag.Int64("lambda", 0, "degeneracy bound for -cliques (0: compute exactly)")
		exactF  = flag.Bool("exact", false, "also print the exact count (loads the graph into memory)")
		seed    = flag.Int64("seed", 1, "random seed")
		paral   = flag.Int("parallel", 0, "pass-engine workers (0: GOMAXPROCS, 1: sequential; same estimate either way)")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}

	st, err := readStream(*input, *updates)
	if err != nil {
		log.Fatal(err)
	}

	if *cliques >= 3 {
		runCliques(st, *cliques, *lambda, *eps, *lower, *seed, *paral, *exactF)
		return
	}

	p, err := streamcount.PatternByName(*pat)
	if err != nil {
		log.Fatal(err)
	}
	cfg := streamcount.Config{
		Pattern:     p,
		Trials:      *trials,
		Epsilon:     *eps,
		LowerBound:  *lower,
		EdgeBound:   st.Len(),
		Seed:        *seed,
		Parallelism: *paral,
	}
	est, err := streamcount.Estimate(st, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern    %s (rho=%.1f)\n", p.Name(), p.Rho())
	fmt.Printf("stream     n=%d, %d updates, m=%d\n", st.N(), st.Len(), est.M)
	fmt.Printf("estimate   %.1f\n", est.Value)
	fmt.Printf("passes     %d\n", est.Passes)
	fmt.Printf("trials     %d\n", est.Trials)
	fmt.Printf("space      %d words\n", est.SpaceWords)
	if *exactF {
		g, err := stream.Materialize(st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exact      %d\n", streamcount.ExactCount(g, p))
	}
}

func runCliques(st streamcount.Stream, r int, lambda int64, eps, lower float64, seed int64, paral int, exactF bool) {
	var g *graph.Graph
	if lambda == 0 || exactF || lower == 0 {
		var err error
		g, err = stream.Materialize(st)
		if err != nil {
			log.Fatal(err)
		}
	}
	if lambda == 0 {
		lambda, _ = streamcount.Degeneracy(g)
	}
	if lower == 0 {
		p, _ := streamcount.PatternByName(fmt.Sprintf("K%d", r))
		exact := streamcount.ExactCount(g, p)
		if exact == 0 {
			fmt.Println("graph contains no such cliques")
			return
		}
		lower = float64(exact) / 2
		fmt.Printf("(no -lower given: using exact/2 = %.1f)\n", lower)
	}
	est, err := streamcount.EstimateCliques(st, streamcount.CliqueConfig{
		R: r, Lambda: lambda, Epsilon: eps, LowerBound: lower, Seed: seed,
		Parallelism: paral,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern    K%d (degeneracy λ=%d)\n", r, lambda)
	fmt.Printf("estimate   %.1f\n", est.Value)
	fmt.Printf("passes     %d (bound 5r = %d)\n", est.Passes, 5*r)
	fmt.Printf("space      %d words\n", est.SpaceWords)
	if exactF {
		p, _ := streamcount.PatternByName(fmt.Sprintf("K%d", r))
		fmt.Printf("exact      %d\n", streamcount.ExactCount(g, p))
	}
}

func readStream(path string, updateFormat bool) (streamcount.Stream, error) {
	if updateFormat {
		// File-backed streams are replayed from disk on every pass, so
		// update streams larger than memory still work.
		return stream.OpenFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := streamcount.ReadGraph(f)
	if err != nil {
		return nil, err
	}
	return streamcount.StreamFromGraph(g), nil
}
