// Command streamcount estimates the number of copies of a pattern H in a
// graph stream read from a file, using the paper's 3-pass algorithm
// (Theorem 17 insertion-only / Theorem 1 turnstile) or the 5r-pass
// low-degeneracy clique counter (Theorem 2).
//
// Input formats:
//
//	graph:   header "n m", then one "u v" line per edge (insertion-only)
//	updates: header "n", then "+ u v" / "- u v" lines (turnstile)
//
// A comma-separated -pattern list submits every pattern to one engine over
// the stream: all estimators ride the same shared replays instead of 3
// passes each. Failures are per-query — the whole run is not aborted by one
// bad pattern; a result table with an error column is printed and the exit
// status is nonzero if any query failed.
//
// The process cancels cleanly: -timeout bounds the total run, and a SIGINT
// (Ctrl-C) or SIGTERM aborts in-flight replays between update batches; both
// surface as "canceled" errors in the result table.
//
// With -watch the command follows the stream instead of replaying it once:
// the input is fed into a live appendable stream — the input file in
// -watch-batch chunks, or update lines from stdin with -input - — and each
// pattern becomes a standing query that prints one result row per watch
// event as ingestion advances. By default events coalesce to the newest
// version (-watch-every evaluates every published version instead). The
// command exits when the input is exhausted and every watch has reported
// the final version; a SIGINT exits cleanly through the same graceful
// cancel path as the one-shot mode.
//
// Examples:
//
//	streamcount -input graph.txt -pattern triangle -trials 100000
//	streamcount -input graph.txt -pattern triangle,C5,K4 -trials 100000
//	streamcount -input updates.txt -updates -pattern C5 -trials 500000
//	streamcount -input graph.txt -cliques 4 -eps 0.3 -lower 50
//	streamcount -input huge.txt -updates -pattern C5 -timeout 30s
//	streamcount -watch -input graph.txt -pattern triangle -trials 20000
//	tail -f updates.txt | streamcount -watch -input - -pattern triangle -trials 20000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"streamcount"
	"streamcount/client"
	"streamcount/internal/cluster"
	"streamcount/internal/graph"
	"streamcount/internal/stream"
)

// options carries the parsed flags into run.
type options struct {
	input      string
	updates    bool
	pat        string
	trials     int
	eps        float64
	lower      float64
	cliques    int
	lambda     int64
	exactF     bool
	seed       int64
	paral      int
	timeout    time.Duration
	watch      bool
	watchEvery bool
	watchBatch int
	cluster    string
	stream     string
	list       bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamcount: ")
	var o options
	flag.StringVar(&o.input, "input", "", "input file (required)")
	flag.BoolVar(&o.updates, "updates", false, "input is a turnstile update list, not an edge list")
	flag.StringVar(&o.pat, "pattern", "triangle", "pattern name or comma-separated list: triangle, C<k>, K<r>, S<k>, P<k>, paw, diamond")
	flag.IntVar(&o.trials, "trials", 0, "parallel sampler instances (0: derive from -eps/-lower)")
	flag.Float64Var(&o.eps, "eps", 0.1, "target relative error (used when -trials is 0)")
	flag.Float64Var(&o.lower, "lower", 0, "lower bound on #H (used when -trials is 0)")
	flag.IntVar(&o.cliques, "cliques", 0, "if r >= 3: use the Theorem 2 low-degeneracy K_r counter")
	flag.Int64Var(&o.lambda, "lambda", 0, "degeneracy bound for -cliques (0: compute exactly)")
	flag.BoolVar(&o.exactF, "exact", false, "also print the exact count (loads the graph into memory)")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.paral, "parallel", 0, "pass-engine workers (0: GOMAXPROCS, 1: sequential; same estimate either way)")
	flag.DurationVar(&o.timeout, "timeout", 0, "overall deadline (0: none); exceeding it cancels in-flight replays")
	flag.BoolVar(&o.watch, "watch", false, "follow the input as a live stream: standing queries print one row per watch event ('-input -' reads update lines from stdin)")
	flag.BoolVar(&o.watchEvery, "watch-every", false, "with -watch: evaluate every published version in order instead of coalescing to the newest")
	flag.IntVar(&o.watchBatch, "watch-batch", 1024, "with -watch on a file input: updates appended per batch (each batch publishes one version)")
	flag.StringVar(&o.cluster, "cluster", "", "comma-separated streamcountd node addresses: query a sharded deployment instead of a local file (any node works as a seed; requests are routed to each stream's owner, following wrong_node redirects)")
	flag.StringVar(&o.stream, "stream", "", "with -cluster: the stream to query")
	flag.BoolVar(&o.list, "list", false, "with -cluster: print the cluster map and every stream across the cluster, then exit")
	flag.Parse()
	if o.input == "" && o.cluster == "" {
		flag.Usage()
		os.Exit(2)
	}
	if o.input == "-" && !o.watch {
		log.Print("-input - (stdin) requires -watch")
		os.Exit(2)
	}
	// All real work happens in run so its deferred cleanups (signal stop,
	// timeout cancel) execute on every path — a log.Fatal here in main used
	// to skip them on early errors (go vet -lostcancel territory).
	os.Exit(run(o))
}

func run(o options) int {
	// Context plumbing: Ctrl-C / SIGTERM cancel between update batches of
	// any in-flight pass; -timeout adds a deadline on top.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	if o.cluster != "" {
		if o.watch || o.cliques >= 3 || o.exactF {
			log.Print("-cluster supports pattern-count queries and -list only")
			return 2
		}
		return runCluster(ctx, o)
	}

	if o.watch {
		if o.cliques >= 3 {
			log.Print("-watch supports pattern counting only, not -cliques")
			return 2
		}
		return runWatch(ctx, o)
	}

	st, err := readStream(o.input, o.updates)
	if err != nil {
		log.Print(err)
		return 1
	}

	if o.cliques >= 3 {
		if !runCliques(ctx, st, o.cliques, o.lambda, o.eps, o.lower, o.seed, o.paral, o.exactF) {
			return 1
		}
		return 0
	}

	names := splitPatterns(o.pat)
	if len(names) == 0 {
		log.Print("no pattern given")
		return 1
	}
	if !runPatterns(ctx, st, names, o.trials, o.eps, o.lower, o.seed, o.paral, o.exactF) {
		return 1
	}
	return 0
}

// runCluster queries a sharded streamcountd deployment through the routing
// client: any listed node works as a seed, and every request is sent to the
// queried stream's owning node, following wrong_node redirects across
// transfers. -list prints the cluster map and the union of every node's
// streams instead of querying.
func runCluster(ctx context.Context, o options) int {
	cl, err := client.NewCluster(splitPatterns(o.cluster))
	if err != nil {
		log.Print(err)
		return 1
	}
	if o.list {
		return listCluster(ctx, cl)
	}
	if o.stream == "" {
		log.Print("-cluster needs -stream (or -list)")
		return 2
	}
	names := splitPatterns(o.pat)
	if len(names) == 0 {
		log.Print("no pattern given")
		return 1
	}

	version, err := cl.StreamVersion(ctx, o.stream)
	if err != nil {
		log.Print(err)
		return 1
	}

	rows := make([]row, len(names))
	done := make(chan int, len(names))
	for i, name := range names {
		rows[i].name = name
		p, err := streamcount.PatternByName(name)
		if err != nil {
			rows[i].err = err
			done <- i
			continue
		}
		rows[i].p = p
		go func(i int, p *streamcount.Pattern) {
			opts := []streamcount.QueryOption{
				streamcount.WithTrials(o.trials),
				streamcount.WithEpsilon(o.eps),
				streamcount.WithLowerBound(o.lower),
				streamcount.WithSeed(o.seed + int64(i)),
				streamcount.WithParallelism(o.paral),
			}
			rows[i].est, rows[i].err = streamcount.DoOn(ctx, cl, o.stream, streamcount.CountQuery(p, opts...))
			done <- i
		}(i, p)
	}
	for range names {
		<-done
	}

	fmt.Printf("stream     %s@v%d\n\n", o.stream, version)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "pattern\trho\testimate\tpasses\ttrials\tspace(words)\terror")
	ok := true
	for _, r := range rows {
		if r.err != nil {
			ok = false
			rho := "-"
			if r.p != nil {
				rho = fmt.Sprintf("%.1f", r.p.Rho())
			}
			fmt.Fprintf(w, "%s\t%s\t-\t-\t-\t-\t%s\n", r.name, rho, errLabel(r.err))
			continue
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d\t%d\t%d\t\n",
			r.name, r.p.Rho(), r.est.Value, r.est.Passes, r.est.Trials, r.est.SpaceWords)
	}
	w.Flush()
	if !ok {
		return 1
	}
	return 0
}

// listCluster prints the adopted cluster map and the union of every node's
// stream listing.
func listCluster(ctx context.Context, cl *client.Cluster) int {
	m, err := cl.ClusterMap(ctx)
	if err != nil {
		log.Print(err)
		return 1
	}
	fmt.Printf("cluster map v%d (%d nodes, %d vnodes)\n", m.Version, len(m.Nodes), m.VNodes)
	for _, n := range m.Nodes {
		fmt.Printf("  %s\t%s\n", n.ID, n.Addr)
	}
	streams, err := cl.Streams(ctx)
	if err != nil {
		log.Print(err)
		return 1
	}
	// Re-deriving placement client-side matches the servers exactly: same
	// map, same hash, same owner.
	ring, err := cluster.FromWire(m)
	if err != nil {
		log.Print(err)
		return 1
	}
	fmt.Printf("streams (%d):\n", len(streams))
	for _, s := range streams {
		owner := ring.Owner(s).ID
		if _, ok := m.Overrides[s]; ok {
			owner += " (override)"
		}
		fmt.Printf("  %s\t%s\n", s, owner)
	}
	return 0
}

func splitPatterns(s string) []string {
	var names []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names
}

// row is one line of the result table: a served estimate or an error.
type row struct {
	name string
	p    *streamcount.Pattern
	est  *streamcount.CountResult
	err  error
}

// runPatterns serves every named pattern through one engine over the stream
// — concurrent queries share replays — and prints a result table. Failures
// (unknown pattern, bad budget, cancellation) become per-query error rows
// instead of aborting the run; it returns false if any query failed.
func runPatterns(ctx context.Context, st streamcount.Stream, names []string, trials int, eps, lower float64, seed int64, paral int, exactF bool) bool {
	e := streamcount.NewEngine(st, streamcount.WithAdmissionWindow(50*time.Millisecond))
	defer e.Close()

	rows := make([]row, len(names))
	done := make(chan int, len(names))
	for i, name := range names {
		rows[i].name = name
		p, err := streamcount.PatternByName(name)
		if err != nil {
			rows[i].err = err
			done <- i
			continue
		}
		rows[i].p = p
		go func(i int, p *streamcount.Pattern) {
			opts := []streamcount.QueryOption{
				streamcount.WithTrials(trials),
				streamcount.WithEpsilon(eps),
				streamcount.WithLowerBound(lower),
				streamcount.WithSeed(seed + int64(i)),
				streamcount.WithParallelism(paral),
			}
			rows[i].est, rows[i].err = streamcount.Do(ctx, e, streamcount.CountQuery(p, opts...))
			done <- i
		}(i, p)
	}
	for range names {
		<-done
	}

	var g *graph.Graph
	if exactF {
		var err error
		if g, err = stream.Materialize(st); err != nil {
			log.Print(err)
			exactF = false
		}
	}

	fmt.Printf("stream     n=%d, %d updates\n\n", st.N(), st.Len())
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	header := "pattern\trho\testimate\tpasses\ttrials\tspace(words)"
	if exactF {
		header += "\texact"
	}
	header += "\terror"
	fmt.Fprintln(w, header)
	ok := true
	var sumPasses int64
	for _, r := range rows {
		if r.err != nil {
			ok = false
			rho := "-"
			if r.p != nil {
				rho = fmt.Sprintf("%.1f", r.p.Rho())
			}
			line := fmt.Sprintf("%s\t%s\t-\t-\t-\t-", r.name, rho)
			if exactF {
				line += "\t-"
			}
			fmt.Fprintf(w, "%s\t%s\n", line, errLabel(r.err))
			continue
		}
		sumPasses += r.est.Passes
		line := fmt.Sprintf("%s\t%.1f\t%.1f\t%d\t%d\t%d",
			r.name, r.p.Rho(), r.est.Value, r.est.Passes, r.est.Trials, r.est.SpaceWords)
		if exactF {
			line += fmt.Sprintf("\t%d", streamcount.ExactCount(g, r.p))
		}
		fmt.Fprintf(w, "%s\t\n", line)
	}
	w.Flush()
	fmt.Printf("\nshared passes  %d in %d generation(s) (vs %d if each query replayed privately)\n",
		e.Passes(), e.Generations(), sumPasses)
	return ok
}

// errLabel compresses an error for the table; typed sentinels keep it
// short.
func errLabel(err error) string {
	switch {
	case errors.Is(err, streamcount.ErrCanceled):
		return "canceled (timeout or signal)"
	default:
		return err.Error()
	}
}

func runCliques(ctx context.Context, st streamcount.Stream, r int, lambda int64, eps, lower float64, seed int64, paral int, exactF bool) bool {
	var g *graph.Graph
	if lambda == 0 || exactF || lower == 0 {
		var err error
		g, err = stream.Materialize(st)
		if err != nil {
			log.Print(err)
			return false
		}
	}
	if lambda == 0 {
		lambda, _ = streamcount.Degeneracy(g)
	}
	if lower == 0 {
		p, _ := streamcount.PatternByName(fmt.Sprintf("K%d", r))
		exact := streamcount.ExactCount(g, p)
		if exact == 0 {
			fmt.Println("graph contains no such cliques")
			return true
		}
		lower = float64(exact) / 2
		fmt.Printf("(no -lower given: using exact/2 = %.1f)\n", lower)
	}
	est, err := streamcount.Run(ctx, st, streamcount.CliqueQuery(r,
		streamcount.WithLambda(lambda),
		streamcount.WithEpsilon(eps),
		streamcount.WithLowerBound(lower),
		streamcount.WithSeed(seed),
		streamcount.WithParallelism(paral),
	))
	if err != nil {
		log.Printf("K%d: %s", r, errLabel(err))
		return false
	}
	fmt.Printf("pattern    K%d (degeneracy λ=%d)\n", r, lambda)
	fmt.Printf("estimate   %.1f\n", est.Value)
	fmt.Printf("passes     %d (bound 5r = %d)\n", est.Passes, 5*r)
	fmt.Printf("space      %d words\n", est.SpaceWords)
	if exactF {
		p, _ := streamcount.PatternByName(fmt.Sprintf("K%d", r))
		fmt.Printf("exact      %d\n", streamcount.ExactCount(g, p))
	}
	return true
}

func readStream(path string, updateFormat bool) (streamcount.Stream, error) {
	if updateFormat {
		// File-backed streams are replayed from disk on every pass, so
		// update streams larger than memory still work.
		return stream.OpenFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := streamcount.ReadGraph(f)
	if err != nil {
		return nil, err
	}
	return streamcount.StreamFromGraph(g), nil
}
