package streamcount_test

// The standing-query half of the cross-process determinism suite: a watch
// under WatchLatest coalescing, with appends racing evaluation, must
// deliver events that are bit-identical to standalone runs performed by a
// *different process* at the reported (seed, stream version) — the
// derivation being WatchSeedAt. In-process comparisons cannot catch
// map-iteration-order regressions (each process randomizes map order
// differently), which is exactly the class of bug that would silently break
// the watch reproducibility contract (see the core cancel suite for the
// same technique).

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"streamcount"
)

const (
	watchXSeed   = 7
	watchXTrials = 1500
)

func watchXQuery(t testing.TB) streamcount.TypedQuery[*streamcount.CountResult] {
	t.Helper()
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	return streamcount.CountQuery(p, streamcount.WithTrials(watchXTrials), streamcount.WithSeed(watchXSeed))
}

// watchFingerprint renders a CountResult bit-exactly (the float as raw
// IEEE 754 bits) so two processes can compare without formatting loss.
func watchFingerprint(r *streamcount.CountResult) string {
	return fmt.Sprintf("%016x %d %d %d %d %d",
		math.Float64bits(r.Value), r.M, r.Passes, r.Queries, r.SpaceWords, r.Trials)
}

// TestWatchDeterminismChild is the cross-process half: given a list of
// stream versions, it rebuilds the identical appendable log, runs the
// reference query standalone at each version's derived seed, and prints one
// bit-exact fingerprint per version. No watch machinery runs in this
// process at all.
func TestWatchDeterminismChild(t *testing.T) {
	spec := os.Getenv("STREAMCOUNT_WATCH_CHILD")
	if spec == "" {
		t.Skip("child mode only (driven by TestWatchLatestDeterminismCrossProcess)")
	}
	ups := watchUpdates(t)
	app, err := streamcount.NewAppendableStream(100, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Append(ups); err != nil {
		t.Fatal(err)
	}
	p, _ := streamcount.PatternByName("triangle")
	for _, field := range strings.Split(spec, ",") {
		v, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			t.Fatalf("bad version %q: %v", field, err)
		}
		view, err := app.At(v)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := streamcount.Run(context.Background(), view, streamcount.CountQuery(p,
			streamcount.WithTrials(watchXTrials),
			streamcount.WithSeed(streamcount.WatchSeedAt(watchXSeed, v))))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("WATCHCHILD %d %s\n", v, watchFingerprint(ref))
	}
}

// TestWatchLatestDeterminismCrossProcess races many small appends against a
// latest-wins watch, then asks a pristine child process to reproduce every
// received event standalone from nothing but (seed, version). Every
// fingerprint must match bit for bit.
func TestWatchLatestDeterminismCrossProcess(t *testing.T) {
	if os.Getenv("STREAMCOUNT_WATCH_CHILD") != "" {
		t.Skip("already in child mode")
	}
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}

	ups := watchUpdates(t)
	app, err := streamcount.NewAppendableStream(100, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := streamcount.NewEngine(app)
	defer e.Close()

	sub, err := streamcount.Watch(context.Background(), e, "", watchXQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Appends race evaluation: small batches published as fast as the engine
	// takes them, while the watch coalesces to whatever is newest each time
	// it comes up for air.
	appendErr := make(chan error, 1)
	go func() {
		for i := 0; i < len(ups); i += 64 {
			if _, err := e.Append("", ups[i:min(i+64, len(ups))]); err != nil {
				appendErr <- err
				return
			}
		}
		appendErr <- nil
	}()

	type eventFP struct {
		version int64
		fp      string
	}
	var events []eventFP
	final := int64(len(ups))
	deadline := time.After(60 * time.Second)
collect:
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok || ev.Err != nil {
				t.Fatalf("watch ended early: %v (Err %v)", ev.Err, sub.Err())
			}
			if len(events) > 0 && ev.StreamVersion <= events[len(events)-1].version {
				t.Fatalf("versions not increasing: %d after %d", ev.StreamVersion, events[len(events)-1].version)
			}
			events = append(events, eventFP{ev.StreamVersion, watchFingerprint(ev.Result)})
			if ev.StreamVersion == final {
				break collect
			}
		case <-deadline:
			t.Fatal("watch never reached the final version")
		}
	}
	if err := <-appendErr; err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events collected")
	}

	// A pristine process reproduces every event from (seed, version) alone.
	versions := make([]string, len(events))
	for i, ev := range events {
		versions[i] = strconv.FormatInt(ev.version, 10)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestWatchDeterminismChild$", "-test.v")
	cmd.Env = append(os.Environ(), "STREAMCOUNT_WATCH_CHILD="+strings.Join(versions, ","))
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}
	theirs := map[int64]string{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		rest, ok := strings.CutPrefix(sc.Text(), "WATCHCHILD ")
		if !ok {
			continue
		}
		vStr, fp, ok := strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("malformed child line %q", sc.Text())
		}
		v, err := strconv.ParseInt(vStr, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		theirs[v] = fp
	}
	if len(theirs) != len(events) {
		t.Fatalf("child reproduced %d versions, want %d:\n%s", len(theirs), len(events), out)
	}
	for _, ev := range events {
		if theirs[ev.version] != ev.fp {
			t.Errorf("cross-process mismatch at version %d:\n  watch event:   %s\n  child process: %s",
				ev.version, ev.fp, theirs[ev.version])
		}
	}
	t.Logf("verified %d coalesced watch events against a pristine process", len(events))
}
