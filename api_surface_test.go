package streamcount_test

// The API-surface golden test: the exported surface of the facade package
// is rendered to a sorted symbol list and compared against
// testdata/api_surface.golden, so accidental breakage (a renamed option, a
// changed signature, a dropped method) fails CI instead of shipping.
//
// After an intentional API change, regenerate with
//
//	go test -run TestAPISurfaceGolden -update-api-surface

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPISurface = flag.Bool("update-api-surface", false, "rewrite testdata/api_surface.golden from the current source")

const goldenPath = "testdata/api_surface.golden"

func TestAPISurfaceGolden(t *testing.T) {
	got := renderAPISurface(t, ".")
	if *updateAPISurface {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-api-surface to create): %v", err)
	}
	want := string(wantBytes)
	if got != want {
		t.Errorf("exported API surface changed.\nIf intentional, regenerate with:\n\tgo test -run TestAPISurfaceGolden -update-api-surface\n\n%s", surfaceDiff(want, got))
	}
}

// renderAPISurface parses the package in dir (non-test files) and returns
// one line per exported symbol, sorted.
func renderAPISurface(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["streamcount"]
	if !ok {
		t.Fatalf("package streamcount not found in %s (got %v)", dir, pkgs)
	}

	var lines []string
	add := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	render := func(n ast.Node) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, n); err != nil {
			t.Fatal(err)
		}
		// One line per symbol: collapse any multi-line type rendering.
		return strings.Join(strings.Fields(buf.String()), " ")
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					recv := d.Recv.List[0].Type
					// Methods only count when the receiver type is exported.
					base := recv
					if star, ok := base.(*ast.StarExpr); ok {
						base = star.X
					}
					if ident, ok := base.(*ast.Ident); ok && !ident.IsExported() {
						continue
					}
					add("method (%s) %s%s", render(recv), d.Name.Name, renderFuncType(render, d.Type))
				} else {
					add("func %s%s", d.Name.Name, renderFuncType(render, d.Type))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						assign := ""
						if sp.Assign.IsValid() {
							assign = "= "
						}
						add("type %s %s%s", sp.Name.Name, assign, render(exportedOnly(sp.Type)))
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range sp.Names {
							if name.IsExported() {
								add("%s %s", kind, name.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// exportedOnly strips unexported fields from struct types and unexported
// methods from interface types, so the golden file tracks the *public*
// surface — internal representation changes (a private field added to an
// exported struct, a sealed interface's hidden methods) don't trip it. A
// struct/interface that hides anything is marked with an ellipsis so
// "opaque" vs "fully exported" is still part of the surface.
func exportedOnly(t ast.Expr) ast.Expr {
	// marker is rendered in place of the hidden members: a blank field for
	// structs, an embedded pseudo-interface for interfaces (interface
	// methods must be FuncTypes, so a named marker field is not printable).
	filter := func(list *ast.FieldList, marker *ast.Field) *ast.FieldList {
		out := &ast.FieldList{}
		hidden := false
		for _, f := range list.List {
			if len(f.Names) == 0 { // embedded field: keep
				out.List = append(out.List, f)
				continue
			}
			var names []*ast.Ident
			for _, n := range f.Names {
				if n.IsExported() {
					names = append(names, n)
				} else {
					hidden = true
				}
			}
			if len(names) > 0 {
				out.List = append(out.List, &ast.Field{Names: names, Type: f.Type})
			}
		}
		if hidden {
			out.List = append(out.List, marker)
		}
		return out
	}
	switch tt := t.(type) {
	case *ast.StructType:
		return &ast.StructType{Struct: tt.Struct, Fields: filter(tt.Fields, &ast.Field{
			Names: []*ast.Ident{{Name: "_"}},
			Type:  &ast.Ident{Name: "unexportedFields"},
		})}
	case *ast.InterfaceType:
		return &ast.InterfaceType{Interface: tt.Interface, Methods: filter(tt.Methods, &ast.Field{
			Type: &ast.Ident{Name: "unexportedMethods"},
		})}
	default:
		return t
	}
}

// renderFuncType renders a function signature (params + results, plus type
// parameters for generic functions) without the func keyword.
func renderFuncType(render func(ast.Node) string, ft *ast.FuncType) string {
	s := render(ft)
	return strings.TrimPrefix(s, "func")
}

// surfaceDiff reports the added and removed lines between two surface
// renderings (order-insensitive set diff, printed sorted).
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range sortedKeys(wantSet) {
		if !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range sortedKeys(gotSet) {
		if !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	if b.Len() == 0 {
		return "(lines reordered only)"
	}
	return b.String()
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
