package streamcount

import (
	"context"
	"encoding/json"
	"fmt"

	"streamcount/internal/core"
	"streamcount/internal/rcache"
	"streamcount/internal/wire"
)

// CountResult is the outcome of a counting query (CountQuery, CliqueQuery,
// AutoQuery): the estimate plus its pass/query/space accounting.
type CountResult = core.CountResult

// SampleResult is the outcome of a SampleQuery.
type SampleResult struct {
	// Copy is the uniformly sampled copy of H; valid when Found is true.
	Copy SampledCopy
	// Found reports whether any trial witnessed a copy.
	Found bool
	// Passes is the number of stream passes the query consumed.
	Passes int64
}

// DistinguishResult is the outcome of a DistinguishQuery.
type DistinguishResult struct {
	// Above reports the decision: #H >= (1+ε)·l rather than <= l.
	Above bool
	// Estimate is the underlying eps/2-accurate estimate used as evidence.
	Estimate *CountResult
}

// A Query is a typed, immutable description of one unit of work: which
// algorithm to run, on what pattern, under which knobs. Build queries with
// the constructors (CountQuery, SampleQuery, CliqueQuery, AutoQuery,
// DistinguishQuery) and functional options (WithEpsilon, WithTrials, ...),
// then run them with Run (one-shot over a stream) or submit them to an
// Engine. Queries are plain values — reuse and resubmit them freely.
//
// The interface is sealed: the only implementations are the ones this
// package constructs.
type Query interface {
	// Kind names the query's algorithm ("count", "sample", "cliques",
	// "auto", "distinguish") for error tables and logs.
	Kind() string
	// job lowers the query to a core job. defaultEdgeBound is the stream
	// length, used when the query derives its trial budget and no explicit
	// WithEdgeBound was given.
	job(defaultEdgeBound int64) (core.Job, error)
	// outcome converts a served job handle to the untyped Outcome.
	outcome(h *core.JobHandle) Outcome
}

// A TypedQuery is a Query whose result type is known statically: CountQuery
// returns a TypedQuery[*CountResult], SampleQuery a TypedQuery[*SampleResult],
// and so on. Run, Do and Watch return the matching result without any
// assertion.
type TypedQuery[R any] interface {
	Query
	// result converts a served job handle to the query's typed result.
	result(h *core.JobHandle) R
	// fromOutcome recovers the typed result from an untyped Outcome — the
	// common currency of the Querier interface, local or remote.
	fromOutcome(o Outcome) (R, error)
}

// Outcome is the untyped result of Engine.Submit: exactly one of the typed
// result fields is set, per Kind. Heterogeneous callers (result tables,
// fan-out over mixed query kinds) switch on Kind; homogeneous callers should
// prefer the typed Do / Run and never see an Outcome.
type Outcome struct {
	// Kind is the served query's Kind().
	Kind string
	// StreamVersion is the stream version the query's admission generation
	// pinned: the query ran over exactly that prefix of the stream (the full
	// length for static streams). Resubmitting the same query against the
	// same prefix returns a bit-identical result.
	StreamVersion int64
	// Count is set for count, cliques and auto queries.
	Count *CountResult
	// Sample is set for sample queries.
	Sample *SampleResult
	// Decision is set for distinguish queries.
	Decision *DistinguishResult
}

// queryOpts collects every knob the functional options can set. The zero
// value means "unset"; resolve applies the documented defaults.
type queryOpts struct {
	trials      int
	maxTrials   int
	epsilon     float64
	lowerBound  float64
	edgeBound   int64
	seed        int64
	parallelism int
	lambda      int64

	// legacy marks a query built from a legacy Config by the deprecated
	// wrappers: no ε default, no stream-length edge-bound default, so the
	// wrappers behave exactly as the pre-query API did.
	legacy bool
}

// QueryOption configures a query constructor. Options are evaluated in
// order; later options override earlier ones.
type QueryOption func(*queryOpts)

// WithEpsilon sets the target relative error ε (default 0.1 for every query
// kind — unlike the legacy Config path, where the Auto search defaulted to
// 0.2). It matters when the trial budget is derived, i.e. when WithTrials is
// not given.
func WithEpsilon(eps float64) QueryOption { return func(o *queryOpts) { o.epsilon = eps } }

// WithTrials fixes the number of parallel sampler instances directly,
// overriding the ε/lower-bound derivation.
func WithTrials(n int) QueryOption { return func(o *queryOpts) { o.trials = n } }

// WithMaxTrials caps derived trial counts (default 1_000_000).
func WithMaxTrials(n int) QueryOption { return func(o *queryOpts) { o.maxTrials = n } }

// WithLowerBound sets the lower bound L on #H (the paper's
// parameterization), used to derive the trial budget when WithTrials is not
// given.
func WithLowerBound(l float64) QueryOption { return func(o *queryOpts) { o.lowerBound = l } }

// WithEdgeBound sets the upper bound on the stream's edge count used to
// derive the trial budget. Default: the stream's length at submission time,
// which is always a valid bound.
func WithEdgeBound(m int64) QueryOption { return func(o *queryOpts) { o.edgeBound = m } }

// WithSeed seeds the query's randomness. Queries with the same seed and
// knobs return bit-identical results on every run, at any parallelism,
// standalone or inside any engine generation (DESIGN.md §2, §3).
func WithSeed(seed int64) QueryOption { return func(o *queryOpts) { o.seed = seed } }

// WithParallelism bounds the pass engine's worker goroutines. 0 selects
// GOMAXPROCS; 1 forces the sequential path. The result does not depend on
// it.
func WithParallelism(p int) QueryOption { return func(o *queryOpts) { o.parallelism = p } }

// WithLambda sets the degeneracy bound λ of the input graph for
// CliqueQuery. Required there; ignored by the other query kinds.
func WithLambda(lambda int64) QueryOption { return func(o *queryOpts) { o.lambda = lambda } }

// resolve applies defaults shared by every query kind.
func resolve(opts []QueryOption) queryOpts {
	var o queryOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.epsilon == 0 {
		o.epsilon = 0.1
	}
	return o
}

// config lowers the shared knobs to a core.Config for pattern p.
// defaultEdgeBound is normally core.EdgeBoundStreamLen — "the length of the
// stream the job ends up replaying", resolved at job start so that a query
// over a live appendable stream derives its trial budget from its
// generation's pinned version, not from the length at submission time.
func (o queryOpts) config(p *Pattern, defaultEdgeBound int64) core.Config {
	eb := o.edgeBound
	if eb == 0 && o.trials == 0 && !o.legacy {
		eb = defaultEdgeBound
	}
	return core.Config{
		Pattern:     p,
		Trials:      o.trials,
		Epsilon:     o.epsilon,
		LowerBound:  o.lowerBound,
		EdgeBound:   eb,
		MaxTrials:   o.maxTrials,
		Seed:        o.seed,
		Parallelism: o.parallelism,
	}
}

// countResultOf reads the counting outcome off a served handle.
func countResultOf(h *core.JobHandle) *CountResult { return h.Result().Est }

// countFromOutcome recovers the counting result from an Outcome (count,
// cliques and auto queries share it).
func countFromOutcome(o Outcome) (*CountResult, error) {
	if o.Count == nil {
		return nil, fmt.Errorf("streamcount: outcome of kind %q carries no count result: %w", o.Kind, ErrBadConfig)
	}
	return o.Count, nil
}

// --- count ---

type countQuery struct {
	p *Pattern
	o queryOpts
}

// CountQuery builds the (1±ε)-approximate counting query for pattern p —
// the paper's 3-pass algorithm (Theorem 17 insertion-only, Theorem 1
// turnstile). Give either WithTrials, or WithEpsilon+WithLowerBound (the
// edge bound defaults to the stream length).
func CountQuery(p *Pattern, opts ...QueryOption) TypedQuery[*CountResult] {
	return countQuery{p: p, o: resolve(opts)}
}

func (q countQuery) Kind() string { return "count" }
func (q countQuery) job(eb int64) (core.Job, error) {
	if q.p == nil {
		return core.Job{}, fmt.Errorf("streamcount: CountQuery: nil pattern: %w", ErrBadPattern)
	}
	return core.Job{Kind: core.JobEstimate, Config: q.o.config(q.p, eb)}, nil
}
func (q countQuery) result(h *core.JobHandle) *CountResult { return countResultOf(h) }
func (q countQuery) outcome(h *core.JobHandle) Outcome {
	return Outcome{Kind: q.Kind(), Count: countResultOf(h)}
}
func (q countQuery) fromOutcome(o Outcome) (*CountResult, error) { return countFromOutcome(o) }
func (q countQuery) MarshalJSON() ([]byte, error)                { return marshalWireQuery(q.Kind(), q.p, 0, 0, q.o) }

// --- sample ---

type sampleQuery struct {
	p *Pattern
	o queryOpts
}

// SampleQuery builds the uniform-sampling query for pattern p: one
// uniformly random copy of H in 3 passes (Lemma 16/18). Found is false on a
// miss; for success probability ~1 set WithTrials ≈ 10·(2m)^ρ(H)/#H.
func SampleQuery(p *Pattern, opts ...QueryOption) TypedQuery[*SampleResult] {
	return sampleQuery{p: p, o: resolve(opts)}
}

func (q sampleQuery) Kind() string { return "sample" }
func (q sampleQuery) job(eb int64) (core.Job, error) {
	if q.p == nil {
		return core.Job{}, fmt.Errorf("streamcount: SampleQuery: nil pattern: %w", ErrBadPattern)
	}
	return core.Job{Kind: core.JobSample, Config: q.o.config(q.p, eb)}, nil
}
func (q sampleQuery) result(h *core.JobHandle) *SampleResult {
	r := h.Result()
	return &SampleResult{Copy: r.Copy, Found: r.Found, Passes: h.Passes()}
}
func (q sampleQuery) outcome(h *core.JobHandle) Outcome {
	return Outcome{Kind: q.Kind(), Sample: q.result(h)}
}
func (q sampleQuery) fromOutcome(o Outcome) (*SampleResult, error) {
	if o.Sample == nil {
		return nil, fmt.Errorf("streamcount: outcome of kind %q carries no sample result: %w", o.Kind, ErrBadConfig)
	}
	return o.Sample, nil
}
func (q sampleQuery) MarshalJSON() ([]byte, error) { return marshalWireQuery(q.Kind(), q.p, 0, 0, q.o) }

// --- cliques ---

type cliqueQuery struct {
	r int
	o queryOpts

	// legacyCfg carries a full legacy CliqueConfig (including the raw ERS
	// Params escape hatch) for the deprecated EstimateCliques wrapper.
	legacyCfg *CliqueConfig
}

// CliqueQuery builds the K_r counting query for low-degeneracy
// insertion-only streams — the paper's 5r-pass ERS algorithm (Theorem 2).
// WithLambda (the degeneracy bound) and WithLowerBound are required;
// WithEpsilon tunes accuracy.
func CliqueQuery(r int, opts ...QueryOption) TypedQuery[*CountResult] {
	return cliqueQuery{r: r, o: resolve(opts)}
}

func (q cliqueQuery) Kind() string { return "cliques" }
func (q cliqueQuery) job(int64) (core.Job, error) {
	if q.legacyCfg != nil {
		return core.Job{Kind: core.JobCliques, Clique: *q.legacyCfg}, nil
	}
	if q.r < 3 {
		return core.Job{}, fmt.Errorf("streamcount: CliqueQuery: clique size %d < 3: %w", q.r, ErrBadConfig)
	}
	if q.o.lambda <= 0 {
		return core.Job{}, fmt.Errorf("streamcount: CliqueQuery: WithLambda (degeneracy bound) is required: %w", ErrBadConfig)
	}
	if q.o.lowerBound <= 0 {
		return core.Job{}, fmt.Errorf("streamcount: CliqueQuery: WithLowerBound is required: %w", ErrBadConfig)
	}
	return core.Job{Kind: core.JobCliques, Clique: core.CliqueConfig{
		R:           q.r,
		Lambda:      q.o.lambda,
		Epsilon:     q.o.epsilon,
		LowerBound:  q.o.lowerBound,
		Seed:        q.o.seed,
		Parallelism: q.o.parallelism,
	}}, nil
}
func (q cliqueQuery) result(h *core.JobHandle) *CountResult { return countResultOf(h) }
func (q cliqueQuery) outcome(h *core.JobHandle) Outcome {
	return Outcome{Kind: q.Kind(), Count: countResultOf(h)}
}
func (q cliqueQuery) fromOutcome(o Outcome) (*CountResult, error) { return countFromOutcome(o) }
func (q cliqueQuery) MarshalJSON() ([]byte, error) {
	if q.legacyCfg != nil {
		return nil, fmt.Errorf("streamcount: legacy clique config is not wire-encodable: %w", ErrBadConfig)
	}
	return marshalWireQuery(q.Kind(), nil, q.r, 0, q.o)
}

// --- auto ---

type autoQuery struct {
	p *Pattern
	o queryOpts
}

// AutoQuery builds the counting query for callers without a lower bound on
// #H: a geometric search over guesses (cf. Lemma 21) at 3 passes per guess,
// with cumulative pass/space accounting. ε defaults to 0.1 like every other
// query (the legacy EstimateAuto defaulted to 0.2).
func AutoQuery(p *Pattern, opts ...QueryOption) TypedQuery[*CountResult] {
	return autoQuery{p: p, o: resolve(opts)}
}

func (q autoQuery) Kind() string { return "auto" }
func (q autoQuery) job(eb int64) (core.Job, error) {
	if q.p == nil {
		return core.Job{}, fmt.Errorf("streamcount: AutoQuery: nil pattern: %w", ErrBadPattern)
	}
	cfg := q.o.config(q.p, eb)
	// The geometric search starts from the AGM bound m^ρ, so it needs an
	// edge bound even when the trial budget is fixed via WithTrials (where
	// config skips the stream-length default).
	if cfg.EdgeBound == 0 && !q.o.legacy {
		cfg.EdgeBound = eb
	}
	if cfg.EdgeBound <= 0 && cfg.EdgeBound != core.EdgeBoundStreamLen {
		return core.Job{}, fmt.Errorf("streamcount: AutoQuery: the geometric search needs an edge bound: %w", ErrBadConfig)
	}
	return core.Job{Kind: core.JobAuto, Config: cfg}, nil
}
func (q autoQuery) result(h *core.JobHandle) *CountResult { return countResultOf(h) }
func (q autoQuery) outcome(h *core.JobHandle) Outcome {
	return Outcome{Kind: q.Kind(), Count: countResultOf(h)}
}
func (q autoQuery) fromOutcome(o Outcome) (*CountResult, error) { return countFromOutcome(o) }
func (q autoQuery) MarshalJSON() ([]byte, error)                { return marshalWireQuery(q.Kind(), q.p, 0, 0, q.o) }

// --- distinguish ---

type distinguishQuery struct {
	p *Pattern
	l float64
	o queryOpts
}

// DistinguishQuery builds the paper's decision query (§1.1): is #H at least
// (1+ε)·l, or at most l? The answer is decided at the midpoint of an
// ε/2-accurate estimate.
func DistinguishQuery(p *Pattern, l float64, opts ...QueryOption) TypedQuery[*DistinguishResult] {
	return distinguishQuery{p: p, l: l, o: resolve(opts)}
}

func (q distinguishQuery) Kind() string { return "distinguish" }
func (q distinguishQuery) job(eb int64) (core.Job, error) {
	if q.p == nil {
		return core.Job{}, fmt.Errorf("streamcount: DistinguishQuery: nil pattern: %w", ErrBadPattern)
	}
	if q.l <= 0 {
		return core.Job{}, fmt.Errorf("streamcount: DistinguishQuery: threshold %v must be positive: %w", q.l, ErrBadConfig)
	}
	return core.Job{Kind: core.JobDistinguish, Config: q.o.config(q.p, eb), Threshold: q.l}, nil
}
func (q distinguishQuery) result(h *core.JobHandle) *DistinguishResult {
	r := h.Result()
	return &DistinguishResult{Above: r.Above, Estimate: r.Est}
}
func (q distinguishQuery) outcome(h *core.JobHandle) Outcome {
	return Outcome{Kind: q.Kind(), Decision: q.result(h)}
}
func (q distinguishQuery) fromOutcome(o Outcome) (*DistinguishResult, error) {
	if o.Decision == nil {
		return nil, fmt.Errorf("streamcount: outcome of kind %q carries no decision: %w", o.Kind, ErrBadConfig)
	}
	return o.Decision, nil
}
func (q distinguishQuery) MarshalJSON() ([]byte, error) {
	return marshalWireQuery(q.Kind(), q.p, 0, q.l, q.o)
}

// marshalWireQuery lowers a query to its service wire form (the JSON body
// of POST /v1/queries, minus the stream name, which belongs to the request).
// Every query value is a json.Marshaler through it, which is how the client
// SDK sends the same immutable query values over the wire that the local
// Engine executes in-process. Only catalog patterns are encodable — the
// wire names patterns, it does not carry edge lists — and the legacy
// deprecated wrappers are not (their defaulting predates the wire's).
func marshalWireQuery(kind string, p *Pattern, r int, threshold float64, o queryOpts) ([]byte, error) {
	w, err := wireQueryForm(kind, p, r, threshold, o)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// wireQueryForm builds the canonical wire.Query a query lowers to — the
// shared shape behind both its JSON encoding (marshalWireQuery) and its
// result-cache fingerprint (fingerprintOf). One canonicalization means a
// query fingerprints identically whether it was submitted in-process or
// decoded off the wire.
func wireQueryForm(kind string, p *Pattern, r int, threshold float64, o queryOpts) (wire.Query, error) {
	if o.legacy {
		return wire.Query{}, fmt.Errorf("streamcount: legacy %s query is not wire-encodable: %w", kind, ErrBadConfig)
	}
	w := wire.Query{
		Kind:        kind,
		R:           r,
		Threshold:   threshold,
		Epsilon:     o.epsilon,
		Trials:      o.trials,
		LowerBound:  o.lowerBound,
		MaxTrials:   o.maxTrials,
		Seed:        o.seed,
		Parallelism: o.parallelism,
		Lambda:      o.lambda,
	}
	if o.edgeBound != 0 && o.edgeBound != core.EdgeBoundStreamLen {
		w.EdgeBound = o.edgeBound
	}
	if p != nil {
		cat, err := PatternByName(p.Name())
		if err != nil || !samePattern(cat, p) {
			return wire.Query{}, fmt.Errorf("streamcount: pattern %q is not a catalog pattern and cannot be sent over the wire (the wire names patterns; use PatternByName): %w", p.Name(), ErrBadPattern)
		}
		w.Pattern = p.Name()
	}
	return w, nil
}

// fingerprintOf computes q's canonical result-cache fingerprint:
// rcache.Fingerprint over the query's wire form (which excludes seed,
// stream and parallelism — they are separate key components or
// contract-irrelevant). Queries with no canonical wire form — legacy
// wrappers, custom non-catalog patterns — return 0, the uncacheable
// sentinel: they still execute, they just never memoize.
func fingerprintOf(q Query) uint64 {
	var w wire.Query
	var err error
	switch t := q.(type) {
	case countQuery:
		w, err = wireQueryForm(t.Kind(), t.p, 0, 0, t.o)
	case sampleQuery:
		w, err = wireQueryForm(t.Kind(), t.p, 0, 0, t.o)
	case autoQuery:
		w, err = wireQueryForm(t.Kind(), t.p, 0, 0, t.o)
	case distinguishQuery:
		w, err = wireQueryForm(t.Kind(), t.p, 0, t.l, t.o)
	case cliqueQuery:
		if t.legacyCfg != nil {
			return 0
		}
		w, err = wireQueryForm(t.Kind(), nil, t.r, 0, t.o)
	default:
		return 0
	}
	if err != nil {
		return 0
	}
	return rcache.Fingerprint(w)
}

// samePattern reports whether two patterns are structurally identical —
// the guard that keeps a custom NewPattern reusing a catalog name from
// silently encoding as the catalog's different graph.
func samePattern(a, b *Pattern) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// Run executes one query over st under ctx and returns its typed result:
//
//	est, err := streamcount.Run(ctx, st, streamcount.CountQuery(p,
//	    streamcount.WithTrials(100000), streamcount.WithSeed(1)))
//
// Cancellation is checked between the update batches of every pass; a
// canceled run's error wraps ErrCanceled (and the context's own error). For
// many queries over one stream, use an Engine — concurrent queries then
// share replays instead of each paying its own passes.
func Run[R any](ctx context.Context, st Stream, q TypedQuery[R]) (R, error) {
	var zero R
	j, err := q.job(core.EdgeBoundStreamLen)
	if err != nil {
		return zero, err
	}
	h, err := core.RunJob(ctx, st, j)
	if err != nil {
		return zero, err
	}
	return q.result(h), nil
}
