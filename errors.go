package streamcount

import "streamcount/internal/core"

// Typed sentinel errors. Every error returned by Run, Engine.Submit / Do
// and the legacy wrappers wraps exactly one of these; dispatch with
// errors.Is. Cancellation errors additionally wrap the underlying
// context.Canceled / context.DeadlineExceeded, so both checks work.
var (
	// ErrBadPattern reports a missing or unusable target pattern H.
	ErrBadPattern = core.ErrBadPattern
	// ErrBadConfig reports an invalid or underspecified query (no trial
	// budget derivable, missing degeneracy bound, non-positive threshold...).
	ErrBadConfig = core.ErrBadConfig
	// ErrReplayFailed reports a pass over the stream failing mid-replay.
	ErrReplayFailed = core.ErrReplayFailed
	// ErrCanceled reports a query abandoned by context cancellation or
	// timeout.
	ErrCanceled = core.ErrCanceled
	// ErrSessionDone reports a Submit or Run against a Session whose
	// single-shot Run already started.
	ErrSessionDone = core.ErrSessionDone
	// ErrEngineClosed reports a Submit against a closed Engine.
	ErrEngineClosed = core.ErrEngineClosed
	// ErrUnknownStream reports a Submit naming an unregistered stream.
	ErrUnknownStream = core.ErrUnknownStream
	// ErrNotAppendable reports an Append against a stream registered as a
	// static (immutable) stream rather than an AppendableStream.
	ErrNotAppendable = core.ErrNotAppendable
	// ErrWatchClosed reports a standing query ended deliberately —
	// Subscription.Close, or a draining server — rather than by a failure.
	// It is every cleanly closed subscription's terminal error.
	ErrWatchClosed = core.ErrWatchClosed
)
