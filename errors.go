package streamcount

import (
	"errors"

	"streamcount/internal/core"
	"streamcount/internal/stream"
)

// Typed sentinel errors. Every error returned by Run, Engine.Submit / Do
// and the legacy wrappers wraps exactly one of these; dispatch with
// errors.Is. Cancellation errors additionally wrap the underlying
// context.Canceled / context.DeadlineExceeded, so both checks work.
var (
	// ErrBadPattern reports a missing or unusable target pattern H.
	ErrBadPattern = core.ErrBadPattern
	// ErrBadConfig reports an invalid or underspecified query (no trial
	// budget derivable, missing degeneracy bound, non-positive threshold...).
	ErrBadConfig = core.ErrBadConfig
	// ErrReplayFailed reports a pass over the stream failing mid-replay.
	ErrReplayFailed = core.ErrReplayFailed
	// ErrCanceled reports a query abandoned by context cancellation or
	// timeout.
	ErrCanceled = core.ErrCanceled
	// ErrSessionDone reports a Submit or Run against a Session whose
	// single-shot Run already started.
	ErrSessionDone = core.ErrSessionDone
	// ErrEngineClosed reports a Submit against a closed Engine.
	ErrEngineClosed = core.ErrEngineClosed
	// ErrUnknownStream reports a Submit naming an unregistered stream.
	ErrUnknownStream = core.ErrUnknownStream
	// ErrNotAppendable reports an Append against a stream registered as a
	// static (immutable) stream rather than an AppendableStream.
	ErrNotAppendable = core.ErrNotAppendable
	// ErrWatchClosed reports a standing query ended deliberately —
	// Subscription.Close, or a draining server — rather than by a failure.
	// It is every cleanly closed subscription's terminal error.
	ErrWatchClosed = core.ErrWatchClosed
	// ErrManifestCorrupt reports a durable stream directory whose MANIFEST
	// fails its checksum or structural validation. OpenAppendableStream
	// refuses such a directory outright rather than guessing at its
	// contents.
	ErrManifestCorrupt = stream.ErrManifestCorrupt
	// ErrSegmentCorrupt reports a sealed segment file whose header, size, or
	// record checksums contradict the manifest — surfaced by
	// OpenAppendableStream or by replaying a view over the damaged region.
	ErrSegmentCorrupt = stream.ErrSegmentCorrupt
	// ErrEvictFailed reports an append that was published but could not be
	// made (fully) durable — a failing disk under the segment directory. The
	// log remains intact and queryable; later appends retry the flush.
	ErrEvictFailed = stream.ErrEvictFailed
	// ErrReceiptFailed reports a keyed append rejected because its
	// idempotency receipt could not be journaled. Nothing was published — the
	// log is unchanged — so retrying the same key and batch is safe once the
	// disk recovers.
	ErrReceiptFailed = stream.ErrReceiptFailed
	// ErrSealed reports an append against a sealed appendable stream —
	// frozen for shipping while a cluster transfer is in flight. Nothing was
	// published; the identical batch is safe to retry once the seal lifts or
	// against the stream's new owner.
	ErrSealed = stream.ErrSealed
	// ErrQuotaExhausted reports a request rejected by per-tenant admission
	// control: the tenant's token bucket for that surface (queries, appends,
	// or watch registration) is empty. The request was not admitted; retrying
	// after the server-suggested delay (Retry-After) is safe and is what the
	// client's default retry policy does.
	ErrQuotaExhausted = errors.New("streamcount: tenant quota exhausted")
)
