package streamcount_test

// One benchmark per experiment in DESIGN.md §5 (the harness that
// regenerates every table/figure of EXPERIMENTS.md), plus micro-benchmarks
// for the substrates. Experiment benches do one full regeneration per
// iteration; run them with -benchtime=1x for a single regeneration.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamcount"
	"streamcount/client"
	"streamcount/internal/exact"
	"streamcount/internal/experiments"
	"streamcount/internal/fgp"
	"streamcount/internal/gen"
	"streamcount/internal/graph"
	"streamcount/internal/pattern"
	"streamcount/internal/server"
	"streamcount/internal/sketch"
	"streamcount/internal/stream"
	"streamcount/internal/transform"
	"streamcount/internal/wire"
)

//lint:file-ignore SA1019 the session benchmarks keep the deprecated one-shot path as the baseline the engine is measured against.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, 2022, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExp01SpaceComparison(b *testing.B)      { benchExperiment(b, "E01") }
func BenchmarkExp02SamplerUniformity(b *testing.B)    { benchExperiment(b, "E02") }
func BenchmarkExp03ErrorVsInstances(b *testing.B)     { benchExperiment(b, "E03") }
func BenchmarkExp04Turnstile(b *testing.B)            { benchExperiment(b, "E04") }
func BenchmarkExp05PatternSweep(b *testing.B)         { benchExperiment(b, "E05") }
func BenchmarkExp06DegeneracyScaling(b *testing.B)    { benchExperiment(b, "E06") }
func BenchmarkExp07ERSAccuracy(b *testing.B)          { benchExperiment(b, "E07") }
func BenchmarkExp08PassCounts(b *testing.B)           { benchExperiment(b, "E08") }
func BenchmarkExp09L0Sampler(b *testing.B)            { benchExperiment(b, "E09") }
func BenchmarkExp10Baselines(b *testing.B)            { benchExperiment(b, "E10") }
func BenchmarkExp11MultiplicityAblation(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkExp12L0ConfigAblation(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkExp13SessionSharedReplay(b *testing.B)  { benchExperiment(b, "E13") }

// --- micro-benchmarks ---

func BenchmarkL0Update(b *testing.B) {
	s := sketch.NewL0Sampler(1, sketch.L0Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i)*2654435761, 1)
	}
}

func BenchmarkL0Sample(b *testing.B) {
	s := sketch.NewL0Sampler(1, sketch.L0Config{})
	for i := 0; i < 1000; i++ {
		s.Update(uint64(i)*2654435761, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Sample(); !ok {
			b.Fatal("sample failed")
		}
	}
}

func BenchmarkReservoirOffer(b *testing.B) {
	r := sketch.NewReservoir(rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Offer(uint64(i))
	}
}

func BenchmarkExactTriangles(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := gen.ErdosRenyiGNM(rng, 1000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.Triangles(g)
	}
}

func BenchmarkExactK4Cliques(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := gen.BarabasiAlbert(rng, 1000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.Cliques(g, 4)
	}
}

func BenchmarkDegeneracy(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyiGNM(rng, 5000, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Degeneracy(g)
	}
}

func BenchmarkDecomposePattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range []*pattern.Pattern{
			pattern.Triangle(), pattern.CycleGraph(7), pattern.Clique(6), pattern.Paw(),
		} {
			if _, err := pattern.Decompose(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchFGPInsertion measures one full 3-pass FGP count at the given pass
// engine parallelism (0 = GOMAXPROCS, 1 = the sequential baseline).
func benchFGPInsertion(b *testing.B, parallelism int) {
	b.Helper()
	rng := rand.New(rand.NewSource(4))
	g := gen.ErdosRenyiGNM(rng, 500, 5000)
	pl, err := fgp.NewPlan(pattern.Triangle())
	if err != nil {
		b.Fatal(err)
	}
	st := stream.FromGraph(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := transform.NewInsertionRunner(st, rng)
		if err != nil {
			b.Fatal(err)
		}
		r.SetParallelism(parallelism)
		if _, err := fgp.CountParallel(r, pl, 5000, rng, parallelism); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFGPInsertionPass(b *testing.B)           { benchFGPInsertion(b, 0) }
func BenchmarkFGPInsertionPassSequential(b *testing.B) { benchFGPInsertion(b, 1) }

func benchFGPTurnstile(b *testing.B, parallelism int) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	g := gen.ErdosRenyiGNM(rng, 200, 1500)
	pl, err := fgp.NewPlan(pattern.Triangle())
	if err != nil {
		b.Fatal(err)
	}
	st := stream.WithDeletions(g, 0.3, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := transform.NewTurnstileRunner(st, rng)
		r.SetParallelism(parallelism)
		if _, err := fgp.CountParallel(r, pl, 2000, rng, parallelism); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFGPTurnstilePass(b *testing.B)           { benchFGPTurnstile(b, 0) }
func BenchmarkFGPTurnstilePassSequential(b *testing.B) { benchFGPTurnstile(b, 1) }

// sessionBenchWorkload is a shared workload for the session benchmarks: K
// triangle-counting jobs over one 50k-update stream replayed from disk —
// the regime the session engine exists for, where every pass is real I/O
// and parsing. K sequential jobs cost 3K file replays; one session costs 3.
func sessionBenchWorkload(b *testing.B) (streamcount.Stream, []streamcount.Config) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	g := gen.ErdosRenyiGNM(rng, 2000, 50000)
	path := b.TempDir() + "/stream.txt"
	if err := stream.WriteFile(path, stream.FromGraph(g)); err != nil {
		b.Fatal(err)
	}
	st, err := streamcount.OpenStreamFile(path)
	if err != nil {
		b.Fatal(err)
	}
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		b.Fatal(err)
	}
	const k = 8
	cfgs := make([]streamcount.Config, k)
	for i := range cfgs {
		cfgs[i] = streamcount.Config{Pattern: p, Trials: 2000, Seed: int64(i + 1)}
	}
	return st, cfgs
}

// BenchmarkSessionSharedReplay runs K jobs through one session: every round
// k across the jobs is served by a single shared pass.
func BenchmarkSessionSharedReplay(b *testing.B) {
	st, cfgs := sessionBenchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := streamcount.NewSession(st)
		handles := make([]*streamcount.JobHandle, len(cfgs))
		for j, cfg := range cfgs {
			handles[j] = s.Submit(streamcount.Job{Kind: streamcount.JobEstimate, Config: cfg})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		for _, h := range handles {
			if _, err := h.Estimate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSessionSequentialJobs is the baseline the shared replay is
// measured against: the same K jobs as standalone calls, each replaying the
// stream privately.
func BenchmarkSessionSequentialJobs(b *testing.B) {
	st, cfgs := sessionBenchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := streamcount.Estimate(st, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineContinuousAdmission measures the long-lived Engine serving
// the same K-job wave as the session benchmarks, submitted concurrently at
// run time: the admission controller groups the arrivals into shared-replay
// generations, so a wave costs ~3 file replays like a pre-declared session,
// without knowing the batch in advance.
func BenchmarkEngineContinuousAdmission(b *testing.B) {
	st, cfgs := sessionBenchWorkload(b)
	queries := make([]streamcount.TypedQuery[*streamcount.CountResult], len(cfgs))
	for i, cfg := range cfgs {
		queries[i] = streamcount.CountQuery(cfg.Pattern,
			streamcount.WithTrials(cfg.Trials), streamcount.WithSeed(cfg.Seed))
	}
	e := streamcount.NewEngine(st, streamcount.WithAdmissionWindow(2*time.Millisecond))
	defer e.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, q := range queries {
			wg.Add(1)
			go func(q streamcount.TypedQuery[*streamcount.CountResult]) {
				defer wg.Done()
				if _, err := streamcount.Do(ctx, e, q); err != nil {
					b.Error(err)
				}
			}(q)
		}
		wg.Wait()
	}
}

// BenchmarkEngineSessionRunBackToBack is the pre-engine baseline for the
// same wave: a fresh one-shot session per wave, with the batch known up
// front.
func BenchmarkEngineSessionRunBackToBack(b *testing.B) {
	st, cfgs := sessionBenchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := streamcount.NewSession(st)
		handles := make([]*streamcount.JobHandle, len(cfgs))
		for j, cfg := range cfgs {
			handles[j] = s.Submit(streamcount.Job{Kind: streamcount.JobEstimate, Config: cfg})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		for _, h := range handles {
			if _, err := h.Estimate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineWatchIngestLoop measures the standing-query hot loop at
// several resident stream lengths: append a batch to a live stream, then
// wait for the watch event pinned at (or past) the new version. Each
// iteration is one append→event round trip, so ns/op is the per-event
// latency a monitoring client experiences — version notification,
// incremental checkpoint evaluation (DESIGN.md §10) and typed delivery.
// The stream is prefilled, and the registration-triggered event over the
// prefill prefix (which pays the one-time index build) is drained outside
// the timed section; with the checkpoint fast path the timed cost stays
// flat in the stream length instead of growing with every replayed prefix.
func BenchmarkEngineWatchIngestLoop(b *testing.B) {
	for _, size := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("len=%d", size), func(b *testing.B) {
			benchWatchIngestLoop(b, size)
		})
	}
}

func benchWatchIngestLoop(b *testing.B, prefill int) {
	const n = 2000
	const batch = 64
	rng := rand.New(rand.NewSource(12))
	g := gen.ErdosRenyiGNM(rng, n, 128*(1<<10))
	ups := stream.FromGraph(g).Updates()
	if prefill+batch > len(ups) {
		b.Fatalf("workload too small: %d updates for prefill %d", len(ups), prefill)
	}

	app, err := streamcount.NewAppendableStream(n, streamcount.AppendableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	e := streamcount.NewEngine(app)
	defer e.Close()
	if _, err := e.Append("", ups[:prefill]); err != nil {
		b.Fatal(err)
	}

	p, _ := streamcount.PatternByName("triangle")
	sub, err := streamcount.Watch(context.Background(), e, "", streamcount.CountQuery(p,
		streamcount.WithTrials(64), streamcount.WithSeed(1)))
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()

	// Drain the initial evaluation of the prefilled prefix outside the timed
	// section: it pays the cold O(stream) index build that every later event
	// amortizes away.
	if ev, ok := <-sub.Events(); !ok || ev.Err != nil {
		b.Fatalf("watch ended: %v", sub.Err())
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := prefill + (i*batch)%(len(ups)-prefill-batch)
		v, err := e.Append("", ups[start:start+batch])
		if err != nil {
			b.Fatal(err)
		}
		for {
			ev, ok := <-sub.Events()
			if !ok || ev.Err != nil {
				b.Fatalf("watch ended: %v", sub.Err())
			}
			if ev.StreamVersion >= v {
				break
			}
		}
	}
	b.StopTimer()
}

// BenchmarkServerIngestAndQuery measures the whole service layer per
// operation: one HTTP client creates a live stream, ingests a graph in
// batched appends, and runs two concurrent count queries — the daemon's
// steady-state request mix, including JSON codec, admission, generation
// pinning and shared replay.
func BenchmarkServerIngestAndQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := gen.ErdosRenyiGNM(rng, 200, 3000)
	var updates []byte
	{
		type updateJSON struct {
			U int64 `json:"u"`
			V int64 `json:"v"`
		}
		var ups []updateJSON
		stream.FromGraph(g).ForEach(func(u stream.Update) error {
			ups = append(ups, updateJSON{U: u.Edge.U, V: u.Edge.V})
			return nil
		})
		var err error
		if updates, err = json.Marshal(map[string]any{"updates": ups}); err != nil {
			b.Fatal(err)
		}
	}

	srv, err := server.New(server.Options{Window: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			b.Error(err)
		}
	}()
	client := ts.Client()
	post := func(path string, body []byte) ([]byte, error) {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode >= 300 {
			err = fmt.Errorf("%s: %s", resp.Status, data)
		}
		return data, err
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("s%d", i)
		if _, err := post("/v1/streams", []byte(fmt.Sprintf(`{"name":%q,"n":200}`, name))); err != nil {
			b.Fatal(err)
		}
		if _, err := post("/v1/streams/"+name+"/edges", updates); err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for q := 0; q < 2; q++ {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				body := fmt.Sprintf(`{"stream":%q,"pattern":"triangle","trials":2000,"seed":%d}`, name, q)
				if _, err := post("/v1/queries", []byte(body)); err != nil {
					b.Error(err)
				}
			}(q)
		}
		wg.Wait()
	}
}

// BenchmarkServerCachedQuery measures the memoized query path end to end:
// a cache-enabled server answers the same version-pinned query over HTTP on
// every iteration. After the untimed cold run, each request is a result
// cache hit — JSON codec and routing still run, but no generation is
// admitted and no pass replays — so this number against the cold path in
// BenchmarkServerIngestAndQuery is the cache's whole-service win.
func BenchmarkServerCachedQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := gen.ErdosRenyiGNM(rng, 200, 3000)
	var updates []byte
	{
		type updateJSON struct {
			U int64 `json:"u"`
			V int64 `json:"v"`
		}
		var ups []updateJSON
		stream.FromGraph(g).ForEach(func(u stream.Update) error {
			ups = append(ups, updateJSON{U: u.Edge.U, V: u.Edge.V})
			return nil
		})
		var err error
		if updates, err = json.Marshal(map[string]any{"updates": ups}); err != nil {
			b.Fatal(err)
		}
	}

	srv, err := server.New(server.Options{Window: time.Millisecond, ResultCacheMB: 64})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			b.Error(err)
		}
	}()
	client := ts.Client()
	post := func(path string, body []byte) ([]byte, error) {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode >= 300 {
			err = fmt.Errorf("%s: %s", resp.Status, data)
		}
		return data, err
	}

	// Untimed: stream, ingestion, and the one cold run that populates the
	// cache entry every timed iteration hits.
	if _, err := post("/v1/streams", []byte(`{"name":"cached","n":200}`)); err != nil {
		b.Fatal(err)
	}
	if _, err := post("/v1/streams/cached/edges", updates); err != nil {
		b.Fatal(err)
	}
	query := []byte(`{"stream":"cached","pattern":"triangle","trials":2000,"seed":7}`)
	cold, err := post("/v1/queries", query)
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm, err := post("/v1/queries", query)
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(warm, cold) {
			b.Fatalf("cached response diverged from the cold run:\n  cold: %s\n  warm: %s", cold, warm)
		}
	}
}

// BenchmarkStreamPassThroughput measures the pass engine's replay hot path:
// the batched API the runners consume the stream through.
func BenchmarkStreamPassThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := gen.ErdosRenyiGNM(rng, 2000, 50000)
	st := stream.FromGraph(g)
	b.SetBytes(int64(st.Len()) * 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cnt int64
		if err := st.ForEachBatch(func(batch []stream.Update) error {
			cnt += int64(len(batch))
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if cnt != st.Len() {
			b.Fatalf("replayed %d of %d updates", cnt, st.Len())
		}
	}
}

// BenchmarkStreamPassPerUpdate is the legacy per-update replay path, kept
// as the baseline the batched API is measured against.
func BenchmarkStreamPassPerUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := gen.ErdosRenyiGNM(rng, 2000, 50000)
	st := stream.FromGraph(g)
	b.SetBytes(int64(st.Len()) * 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cnt int64
		if err := st.ForEach(func(stream.Update) error { cnt++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClusterNodes starts n in-process cluster nodes over real HTTP
// listeners and returns their seed URLs. The swap indirection exists
// because peer addresses must be known before the servers can be built.
func benchClusterNodes(b *testing.B, n int) []string {
	b.Helper()
	type swap struct{ h atomic.Value }
	serve := func(sw *swap, w http.ResponseWriter, r *http.Request) {
		if h, _ := sw.h.Load().(http.Handler); h != nil {
			h.ServeHTTP(w, r)
			return
		}
		http.Error(w, "node not up yet", http.StatusServiceUnavailable)
	}
	seeds := make([]string, 0, n)
	peers := make([]wire.ClusterNode, n)
	swaps := make([]*swap, n)
	for i := range peers {
		sw := &swap{}
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { serve(sw, w, r) }))
		b.Cleanup(ts.Close)
		swaps[i] = sw
		peers[i] = wire.ClusterNode{ID: fmt.Sprintf("n%d", i+1), Addr: ts.URL}
		seeds = append(seeds, ts.URL)
	}
	for i := range peers {
		srv, err := server.New(server.Options{
			Window:       time.Millisecond,
			ClusterNode:  peers[i].ID,
			ClusterPeers: peers,
		})
		if err != nil {
			b.Fatal(err)
		}
		swaps[i].h.Store(http.Handler(srv))
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Close(ctx); err != nil {
				b.Error(err)
			}
		})
	}
	return seeds
}

// BenchmarkClusterRoutedIngestAndQuery is BenchmarkServerIngestAndQuery
// through the cluster routing layer: a 3-node in-process cluster and a
// map-caching client that sends every create, append and query to the
// stream's owner. The delta over the single-server benchmark is the price
// of routing (map lookups, per-node connection reuse, idempotency keys) —
// wrong-node redirects cost extra and don't occur on the steady-state path.
func BenchmarkClusterRoutedIngestAndQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := gen.ErdosRenyiGNM(rng, 200, 3000)
	var updates []streamcount.Update
	stream.FromGraph(g).ForEach(func(u stream.Update) error {
		updates = append(updates, streamcount.Update{
			Edge: streamcount.Edge{U: u.Edge.U, V: u.Edge.V},
			Op:   streamcount.Insert,
		})
		return nil
	})

	seeds := benchClusterNodes(b, 3)
	cl, err := client.NewCluster(seeds)
	if err != nil {
		b.Fatal(err)
	}
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("s%d", i)
		if err := cl.CreateStream(ctx, name, 200); err != nil {
			b.Fatal(err)
		}
		if _, err := cl.Append(ctx, name, updates); err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for q := 0; q < 2; q++ {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				if _, err := streamcount.DoOn(ctx, cl, name, streamcount.CountQuery(p,
					streamcount.WithTrials(2000), streamcount.WithSeed(int64(q)))); err != nil {
					b.Error(err)
				}
			}(q)
		}
		wg.Wait()
	}
}
