package streamcount

import (
	"context"
	"fmt"
	"sync"

	"streamcount/internal/core"
)

// A Querier executes typed queries: the submission half of the public API,
// implemented symmetrically by the local *Engine and by the client
// package's remote Client, so code written against it — including the
// generic Do/DoOn entry points — runs unchanged embedded in a process or
// against a streamcountd daemon.
type Querier interface {
	// Submit runs q on the default stream and returns its untyped Outcome.
	Submit(ctx context.Context, q Query) (Outcome, error)
	// SubmitOn is Submit against a named stream.
	SubmitOn(ctx context.Context, stream string, q Query) (Outcome, error)
}

// A Watcher is a Querier that also serves standing queries. *Engine and the
// client package's Client both implement it; the generic Watch entry point
// accepts either, so a watch-loop is written once and pointed at a local
// engine or a remote daemon.
type Watcher interface {
	Querier
	// WatchQuery registers q as a standing query on the named stream and
	// returns the untyped subscription. Homogeneous callers should prefer
	// the typed Watch.
	WatchQuery(ctx context.Context, stream string, q Query, opts ...WatchOption) (*Subscription[Outcome], error)
}

// WatchConfig is the resolved standing-query configuration. Implementations
// of Watcher outside this package (the client SDK, test doubles) resolve
// their options through NewWatchConfig; ordinary callers never touch it.
type WatchConfig struct {
	// EveryVersion selects the evaluate-every-published-version policy;
	// false (the default) is latest-wins coalescing.
	EveryVersion bool
	// Buffer is the subscription's event channel capacity.
	Buffer int
	// AfterVersion resumes the watch past an already-observed stream
	// version: no version <= AfterVersion is evaluated. Because every
	// evaluation is seeded WatchSeedAt(seed, version), a watch resumed at
	// the last delivered StreamVersion continues the exact transcript the
	// dropped one was producing.
	AfterVersion int64
}

// WatchOption configures a standing query.
type WatchOption func(*WatchConfig)

// NewWatchConfig resolves opts over the defaults (latest-wins coalescing,
// buffer 1).
func NewWatchConfig(opts ...WatchOption) WatchConfig {
	cfg := WatchConfig{Buffer: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Buffer < 0 {
		cfg.Buffer = 0
	}
	return cfg
}

// WatchEveryVersion makes the watch evaluate every published version in
// order: one event per Append receipt. The backlog grows while evaluation
// is slower than ingestion — use it when completeness matters more than
// freshness. (With appenders racing each other, a receipt whose
// notification arrives only after a newer version was already evaluated is
// subsumed by that evaluation; its updates are a prefix of it.)
func WatchEveryVersion() WatchOption {
	return func(c *WatchConfig) { c.EveryVersion = true }
}

// WatchLatest (the default) coalesces: each time the watch is ready for its
// next evaluation it skips straight to the newest published version, so a
// fast appender or a slow consumer never builds a backlog and every event
// is as fresh as possible.
func WatchLatest() WatchOption {
	return func(c *WatchConfig) { c.EveryVersion = false }
}

// WithWatchBuffer sets the subscription's event channel capacity (default
// 1). A larger buffer decouples the consumer from evaluation; under
// WatchLatest a smaller one coalesces harder.
func WithWatchBuffer(n int) WatchOption {
	return func(c *WatchConfig) { c.Buffer = n }
}

// WatchAfter resumes a standing query past an already-observed stream
// version: versions <= v are never evaluated. Use it to continue a dropped
// watch without re-observing (or gapping) its transcript — each event is
// still seeded WatchSeedAt(seed, version), so the resumed events are
// bit-identical to the ones the uninterrupted watch would have produced.
// The client SDK applies this automatically when it reconnects a watch.
func WatchAfter(v int64) WatchOption {
	return func(c *WatchConfig) { c.AfterVersion = v }
}

// WatchEvent is one evaluation of a standing query. Events are delivered in
// strictly increasing StreamVersion order. The terminal event of a
// subscription — and only it — has Err set (and carries no result);
// Subscription.Err reports the same error after the channel closes.
type WatchEvent[R any] struct {
	// Result is the evaluation's typed result.
	Result R
	// StreamVersion is the exact prefix the evaluation was pinned to. The
	// result is bit-identical to the same query run standalone over that
	// prefix with its seed replaced by WatchSeedAt(seed, StreamVersion).
	StreamVersion int64
	// Generation is the evaluation's index within the subscription: 0 for
	// the first event, then 1, 2, ... regardless of how many stream
	// versions a latest-wins watch skipped in between.
	Generation int64
	// Err is the subscription's terminal error; non-nil only on the final
	// event. After it the channel closes.
	Err error
}

// A Subscription is a standing query's event stream: consume Events until
// it closes, then (or at any point) read Err for the terminal reason —
// every subscription ends with one. Close tears the subscription down from
// the consumer side; canceling the context passed to Watch/WatchQuery, or
// closing the serving engine, ends it from the other side. All three leave
// no goroutines behind.
type Subscription[R any] struct {
	events chan WatchEvent[R]
	cancel context.CancelFunc
	done   chan struct{}
	err    error // terminal reason; written before done closes

	closeOnce sync.Once

	// stats reads the live checkpoint counters of the underlying engine
	// watch; nil for subscriptions without one (e.g. remote).
	stats func() SubscriptionStats
}

// SubscriptionStats reports how a subscription's evaluations were served
// by the engine's watch checkpoint cache (DESIGN.md §10).
type SubscriptionStats struct {
	// CheckpointHits counts evaluations served incrementally from a resident
	// index — the O(Δ) fast path.
	CheckpointHits int64
	// CheckpointMisses counts evaluations that first rebuilt the stream's
	// index from a full replay (cold cache or post-eviction).
	CheckpointMisses int64
	// ColdReplays counts evaluations that bypassed the cache entirely and
	// ran as shared-replay generations (turnstile streams, streams whose
	// index exceeds the cache, or a disabled cache).
	ColdReplays int64
}

// CheckpointStats reports how this subscription's evaluations were served.
// Subscriptions not backed by a local engine watch report zeros. Safe to
// call concurrently with event consumption.
func (s *Subscription[R]) CheckpointStats() SubscriptionStats {
	if s.stats == nil {
		return SubscriptionStats{}
	}
	return s.stats()
}

// NewSubscription assembles a subscription from a feed function and is the
// extension point for Watcher implementations outside this package (the
// client SDK builds its remote subscriptions with it). feed runs on its own
// goroutine: it emits events — emit reports false once the subscription is
// closed and the feed should stop — and its return value becomes the
// subscription's terminal error (a nil return is recorded as
// ErrWatchClosed; feeds only end for a reason). The terminal error is also
// delivered best-effort as a final WatchEvent with Err set, unless the
// consumer itself closed the subscription.
func NewSubscription[R any](buffer int, feed func(ctx context.Context, emit func(WatchEvent[R]) bool) error) *Subscription[R] {
	if buffer < 0 {
		buffer = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Subscription[R]{
		events: make(chan WatchEvent[R], buffer),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		err := feed(ctx, func(ev WatchEvent[R]) bool {
			select {
			case s.events <- ev:
				return true
			case <-ctx.Done():
				return false
			}
		})
		if err == nil {
			err = ErrWatchClosed
		}
		s.err = err
		if ctx.Err() == nil {
			// The consumer didn't close us: deliver the terminal reason as
			// a final event if there is room (Err always has it either way).
			select {
			case s.events <- WatchEvent[R]{Err: err}:
			default:
			}
		}
		close(s.events)
	}()
	return s
}

// Events returns the subscription's event channel. It closes when the
// subscription ends; Err then reports why.
func (s *Subscription[R]) Events() <-chan WatchEvent[R] { return s.events }

// Close ends the subscription from the consumer side and blocks until its
// feed has unwound (no goroutine survives it). Idempotent; always nil.
func (s *Subscription[R]) Close() error {
	s.closeOnce.Do(s.cancel)
	<-s.done
	return nil
}

// Err returns the subscription's terminal error, blocking until the
// subscription has ended. It is never nil afterwards: a deliberately closed
// subscription reports ErrWatchClosed, a canceled one wraps ErrCanceled, an
// engine or server shutdown wraps ErrEngineClosed, and a failed evaluation
// reports its own error.
func (s *Subscription[R]) Err() error {
	<-s.done
	return s.err
}

// WatchSeedAt derives the seed a standing query evaluates with at stream
// version v from the query's WithSeed value. It is the reproducibility
// contract of the watch API: every WatchEvent is bit-identical to the same
// query run standalone over the version-v prefix with
// WithSeed(WatchSeedAt(seed, v)) — in any process, local or behind the
// daemon. Deriving a fresh seed per version keeps successive evaluations
// statistically independent instead of freezing one set of trial coins
// across the whole watch.
func WatchSeedAt(seed, version int64) int64 { return core.WatchSeedAt(seed, version) }

// WatchQuery registers q as a standing query on the named stream: it is
// re-admitted automatically whenever the stream's version advances past the
// last evaluated one, each evaluation pinned to an explicit version (and
// therefore bit-identical to a standalone run at that version's derived
// seed), with events delivered in version order. The stream must be
// appendable (ErrNotAppendable otherwise); version 0 — the empty prefix —
// is never evaluated.
//
// WatchQuery implements Watcher; homogeneous callers should prefer the
// typed Watch, which wraps it.
func (e *Engine) WatchQuery(ctx context.Context, stream string, q Query, opts ...WatchOption) (*Subscription[Outcome], error) {
	cfg := NewWatchConfig(opts...)
	j, err := q.job(core.EdgeBoundStreamLen)
	if err != nil {
		return nil, err
	}
	// Fingerprinted watch evaluations share the result cache with pinned
	// queries: an evaluation at (version, query, derived seed) some other
	// watch or query already computed is served memoized.
	if e.eng.ResultCacheEnabled() {
		j.Fingerprint = fingerprintOf(q)
	}
	cw, err := e.eng.Watch(ctx, stream, j, core.WatchOptions{
		EveryVersion: cfg.EveryVersion,
		Buffer:       cfg.Buffer,
		AfterVersion: cfg.AfterVersion,
	})
	if err != nil {
		return nil, err
	}
	sub := NewSubscription(cfg.Buffer, func(sctx context.Context, emit func(WatchEvent[Outcome]) bool) error {
		defer cw.Close()
		for {
			select {
			case ev, ok := <-cw.Events():
				if !ok {
					return cw.Err()
				}
				o := q.outcome(ev.Handle)
				o.StreamVersion = ev.Version
				if !emit(WatchEvent[Outcome]{Result: o, StreamVersion: ev.Version, Generation: ev.Seq}) {
					return fmt.Errorf("streamcount: watch on %q: %w", stream, ErrWatchClosed)
				}
			case <-sctx.Done():
				return fmt.Errorf("streamcount: watch on %q: %w", stream, ErrWatchClosed)
			}
		}
	})
	sub.stats = func() SubscriptionStats {
		st := cw.CheckpointStats()
		return SubscriptionStats{
			CheckpointHits:   st.CheckpointHits,
			CheckpointMisses: st.CheckpointMisses,
			ColdReplays:      st.ColdReplays,
		}
	}
	return sub, nil
}

// Watch registers a standing query and returns its typed subscription:
//
//	sub, err := streamcount.Watch(ctx, engine, "", streamcount.CountQuery(p,
//	    streamcount.WithTrials(50000), streamcount.WithSeed(7)))
//	for ev := range sub.Events() {
//	    if ev.Err != nil { break } // terminal; sub.Err() has it too
//	    fmt.Println(ev.StreamVersion, ev.Result.Value)
//	}
//
// The watcher may be a local *Engine or the client package's remote Client
// — the loop above runs unchanged against either. Coalescing defaults to
// WatchLatest (skip to the newest version at each evaluation); pass
// WatchEveryVersion() to evaluate every published version in order. The
// subscription ends — with a terminal error on the last event and from
// Err — when ctx is canceled, Close is called, or the serving engine shuts
// down.
func Watch[R any](ctx context.Context, w Watcher, stream string, q TypedQuery[R], opts ...WatchOption) (*Subscription[R], error) {
	cfg := NewWatchConfig(opts...)
	inner, err := w.WatchQuery(ctx, stream, q, opts...)
	if err != nil {
		return nil, err
	}
	sub := NewSubscription(cfg.Buffer, func(sctx context.Context, emit func(WatchEvent[R]) bool) error {
		defer inner.Close()
		for {
			select {
			case ev, ok := <-inner.Events():
				if !ok {
					return inner.Err()
				}
				if ev.Err != nil {
					// Terminal: return it so the channel-close path delivers
					// exactly one final error event.
					return ev.Err
				}
				r, err := q.fromOutcome(ev.Result)
				if err != nil {
					return err
				}
				if !emit(WatchEvent[R]{Result: r, StreamVersion: ev.StreamVersion, Generation: ev.Generation}) {
					return fmt.Errorf("streamcount: watch on %q: %w", stream, ErrWatchClosed)
				}
			case <-sctx.Done():
				return fmt.Errorf("streamcount: watch on %q: %w", stream, ErrWatchClosed)
			}
		}
	})
	sub.stats = inner.stats
	return sub, nil
}
