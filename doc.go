// Package streamcount approximately counts subgraphs in graph streams.
//
// It implements the algorithms of "Approximately Counting Subgraphs in Data
// Streams" (Fichtenberger & Peng, PODS 2022, arXiv:2203.14225):
//
//   - a 3-pass turnstile streaming algorithm that (1±ε)-approximates the
//     number of copies of an arbitrary constant-size subgraph H using
//     Õ(m^ρ(H)/(ε²·#H)) space, where ρ(H) is H's fractional edge-cover
//     number (Theorem 1);
//   - a 5r-pass insertion-only streaming algorithm that (1±ε)-approximates
//     the number of r-cliques in graphs of degeneracy λ using
//     (mλ^{r-2}/#K_r)·poly(log n, 1/ε) space (Theorem 2);
//   - the generic transformation behind both: any k-round adaptive
//     sublinear-time algorithm in the (augmented) general graph query model
//     becomes a k-pass streaming algorithm (Theorems 9 and 11).
//
// # Queries
//
// Work is described by typed queries, built with constructors and
// functional options and returning typed results:
//
//	p, _ := streamcount.PatternByName("triangle")
//	st, _ := streamcount.NewStream(n, updates)
//	est, _ := streamcount.Run(ctx, st, streamcount.CountQuery(p,
//	    streamcount.WithTrials(100000),
//	    streamcount.WithSeed(1),
//	))
//	fmt.Println(est.Value, est.Passes) // ≈ #triangles, 3
//
// CountQuery, SampleQuery, CliqueQuery, AutoQuery and DistinguishQuery
// cover the paper's estimation, sampling and decision variants; Run
// executes one query over a stream under a context — cancellation is
// checked between the update batches of every pass, and errors wrap typed
// sentinels (ErrBadPattern, ErrCanceled, ...) for errors.Is dispatch.
//
// # Engine
//
// To serve many queries over one stream — the embedded-in-a-server case —
// create a long-lived Engine. Submit (or the typed Do) may be called from
// any goroutine at any time; an admission controller groups queries that
// arrive close together into shared-replay generations, so K overlapping
// queries cost max-rounds passes over the stream per generation instead of
// the sum, and each result is bit-identical to a standalone run:
//
//	e := streamcount.NewEngine(st)
//	defer e.Close()
//	// from any goroutine, at any time:
//	est, err := streamcount.Do(ctx, e, streamcount.CountQuery(p, streamcount.WithTrials(100000)))
//
// Engines also hold a named-stream registry (RegisterStream / DoOn) so one
// service instance can answer queries over many streams independently.
//
// # Live ingestion
//
// Streams can grow while being served. An AppendableStream is a versioned
// append-only edge log: Append publishes a batch and returns the new
// version, and each admission generation pins the version current at its
// barrier, so every query runs over one immutable prefix and its Outcome
// reports that StreamVersion. Results are bit-identical to standalone runs
// at the pinned (seed, version) regardless of concurrent appends:
//
//	app, _ := streamcount.NewAppendableStream(n, streamcount.AppendableOptions{})
//	e := streamcount.NewEngine(app)
//	v, _ := e.Append("", updates) // safe while queries are in flight
//
// cmd/streamcountd serves this over HTTP/JSON (DESIGN.md §7).
//
// # Standing queries
//
// For continuous monitoring — "keep the triangle estimate tracking this
// growing stream" — register a query once with Watch and consume a stream
// of version-pinned events instead of polling Submit:
//
//	sub, _ := streamcount.Watch(ctx, e, "", streamcount.CountQuery(p,
//	    streamcount.WithTrials(100000), streamcount.WithSeed(7)))
//	for ev := range sub.Events() {
//	    if ev.Err != nil { break } // terminal; sub.Err() reports why
//	    fmt.Println(ev.StreamVersion, ev.Result.Value)
//	}
//
// The watch re-admits the query whenever the stream's version advances: by
// default it coalesces to the newest version at each evaluation
// (WatchLatest); WatchEveryVersion evaluates every published version in
// order. Each event evaluates at the derived seed WatchSeedAt(seed,
// version), so it is bit-identical to a standalone run over that exact
// prefix — reproducible from (seed, version) in any process. Subscriptions
// end with a terminal error (Close → ErrWatchClosed, context cancel →
// ErrCanceled, engine shutdown → ErrEngineClosed) and never leak
// goroutines.
//
// Do, DoOn and Watch accept the Querier/Watcher interfaces, implemented by
// both *Engine and the client package's Client (the Go SDK for
// streamcountd), so the same code — one-shot or watch-loop — runs
// unchanged in-process or against a remote daemon (DESIGN.md §8). When
// streams shard across several daemons (cluster mode, DESIGN.md §11),
// client.NewCluster returns a routing implementation of the same
// interfaces: it caches the cluster's consistent-hash map, sends every
// call to the stream's owning node, follows typed wrong_node redirects,
// and keeps watches gap-free across live stream transfers — responses
// stay bit-identical to a single local engine.
//
// # Parallelism and determinism
//
// The pass engine is parallel: stream replay is batched, each runner shards
// its per-query emulation state across workers, and the FGP trials are
// processed concurrently. WithParallelism bounds the worker count — 0 means
// GOMAXPROCS, 1 forces the sequential path. For a fixed WithSeed the result
// is bit-identical at any parallelism, standalone or inside any engine
// generation, even after cancellations; see DESIGN.md §2–§3 for the
// contract.
//
// # Migrating from the pre-query API
//
// The original entry points remain as thin deprecated wrappers over the
// query API and behave exactly as before:
//
//	Estimate(st, Config{Pattern: p, Trials: n, Seed: s})
//	  -> Run(ctx, st, CountQuery(p, WithTrials(n), WithSeed(s)))
//	Sample(st, cfg)            -> Run(ctx, st, SampleQuery(p, ...))   (SampleResult)
//	EstimateCliques(st, ccfg)  -> Run(ctx, st, CliqueQuery(r, WithLambda(λ), ...))
//	EstimateAuto(st, cfg)      -> Run(ctx, st, AutoQuery(p, ...))
//	Distinguish(st, cfg, l)    -> Run(ctx, st, DistinguishQuery(p, l, ...)) (DistinguishResult)
//	NewSession + Submit + Run  -> NewEngine + Do / Submit
//
// Differences in the new layer: every query kind defaults ε to 0.1 (the
// legacy EstimateAuto path defaulted to 0.2), and the edge bound used to
// derive trial budgets defaults to the stream length instead of being
// required.
//
// Since the standing-query redesign, Do and DoOn take any Querier rather
// than the concrete *Engine. Existing call sites compile unchanged (an
// *Engine is a Querier); code that stored Do's target in a variable of its
// own can widen the type to Querier and gain the remote client for free.
// Polling loops over Submit migrate to Watch:
//
//	for { out, _ := e.Submit(ctx, q); ... }   ->  sub, _ := streamcount.Watch(ctx, e, "", q)
//	                                              for ev := range sub.Events() { ... }
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// architecture and the paper-faithfulness notes.
package streamcount
