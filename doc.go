// Package streamcount approximately counts subgraphs in graph streams.
//
// It implements the algorithms of "Approximately Counting Subgraphs in Data
// Streams" (Fichtenberger & Peng, PODS 2022, arXiv:2203.14225):
//
//   - a 3-pass turnstile streaming algorithm that (1±ε)-approximates the
//     number of copies of an arbitrary constant-size subgraph H using
//     Õ(m^ρ(H)/(ε²·#H)) space, where ρ(H) is H's fractional edge-cover
//     number (Theorem 1);
//   - a 5r-pass insertion-only streaming algorithm that (1±ε)-approximates
//     the number of r-cliques in graphs of degeneracy λ using
//     (mλ^{r-2}/#K_r)·poly(log n, 1/ε) space (Theorem 2);
//   - the generic transformation behind both: any k-round adaptive
//     sublinear-time algorithm in the (augmented) general graph query model
//     becomes a k-pass streaming algorithm (Theorems 9 and 11).
//
// The quickstart:
//
//	p, _ := streamcount.PatternByName("triangle")
//	st, _ := streamcount.NewStream(n, updates)
//	est, _ := streamcount.Estimate(st, streamcount.Config{Pattern: p, Trials: 100000})
//	fmt.Println(est.Value, est.Passes) // ≈ #triangles, 3
//
// # Sessions
//
// Every entry point above is a single-job session. To serve many queries
// over one stream, submit them all to one Session: the pass scheduler
// coalesces the rounds the jobs are concurrently waiting on into shared
// replays, so K jobs cost max-rounds passes over the stream instead of the
// sum, and each job's result stays bit-identical to a standalone run:
//
//	s := streamcount.NewSession(st)
//	h1 := s.Submit(streamcount.Job{Kind: streamcount.JobEstimate, Config: cfg1})
//	h2 := s.Submit(streamcount.Job{Kind: streamcount.JobEstimate, Config: cfg2})
//	_ = s.Run()
//	r1, _ := h1.Estimate() // == streamcount.Estimate(st, cfg1)
//	fmt.Println(s.Passes()) // 3, not 6
//
// # Parallelism
//
// The pass engine is parallel: stream replay is batched, each runner shards
// its per-query emulation state across workers, and the FGP trials are
// processed concurrently. Config.Parallelism (and CliqueConfig.Parallelism)
// bounds the worker count — 0 means GOMAXPROCS, 1 forces the sequential
// path. For a fixed Config.Seed the estimate is bit-identical at any
// parallelism; see DESIGN.md §2 for the determinism contract.
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// architecture and the paper-faithfulness notes.
package streamcount
