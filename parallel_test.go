package streamcount_test

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"streamcount"
)

// estimateAt runs Estimate on st with the given trial budget and
// parallelism at a fixed seed. (Turnstile runs use a smaller budget: each
// RandomEdge query materializes an ℓ0-sampler, so trials dominate memory
// and time there.)
func estimateAt(t *testing.T, st streamcount.Stream, p *streamcount.Pattern, trials, parallelism int) *streamcount.CountResult {
	t.Helper()
	est, err := streamcount.Run(context.Background(), st, streamcount.CountQuery(p,
		streamcount.WithTrials(trials),
		streamcount.WithSeed(42),
		streamcount.WithParallelism(parallelism),
	))
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestEstimateDeterministicAcrossParallelism is the pass engine's
// determinism contract (DESIGN.md §2): a fixed seed yields bit-identical
// estimates no matter how many workers serve the passes, on both stream
// models.
func TestEstimateDeterministicAcrossParallelism(t *testing.T) {
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	g := streamcount.ErdosRenyi(rng, 150, 1200)
	ts := streamcount.TurnstileFromGraph(g, 0.5, rng)

	streams := map[string]struct {
		st     streamcount.Stream
		trials int
	}{
		"insertion": {streamcount.StreamFromGraph(g), 20000},
		"turnstile": {ts, 2000},
	}
	for name, c := range streams {
		st := c.st
		base := estimateAt(t, st, p, c.trials, 1)
		if base.Value <= 0 {
			t.Fatalf("%s: degenerate baseline estimate %v", name, base.Value)
		}
		for _, par := range []int{2, 3, 8, 0} {
			got := estimateAt(t, st, p, c.trials, par)
			if got.Value != base.Value {
				t.Errorf("%s: estimate at parallelism %d = %v, want %v (parallelism 1)",
					name, par, got.Value, base.Value)
			}
			if got.M != base.M || got.Queries != base.Queries || got.SpaceWords != base.SpaceWords {
				t.Errorf("%s: accounting at parallelism %d = (m=%d q=%d w=%d), want (m=%d q=%d w=%d)",
					name, par, got.M, got.Queries, got.SpaceWords, base.M, base.Queries, base.SpaceWords)
			}
		}
	}
}

// TestEstimateDeterministicAcrossGOMAXPROCS pins the same contract against
// the runtime knob: Parallelism 0 resolves to GOMAXPROCS, so the estimate
// at GOMAXPROCS=1 must equal the estimate at GOMAXPROCS=N.
func TestEstimateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	g := streamcount.ErdosRenyi(rng, 100, 800)
	st := streamcount.StreamFromGraph(g)

	old := runtime.GOMAXPROCS(1)
	seq := estimateAt(t, st, p, 10000, 0)
	runtime.GOMAXPROCS(4)
	par := estimateAt(t, st, p, 10000, 0)
	runtime.GOMAXPROCS(old)

	if seq.Value != par.Value {
		t.Errorf("estimate at GOMAXPROCS 1 = %v, at GOMAXPROCS 4 = %v", seq.Value, par.Value)
	}
}

// TestSampleDeterministicAcrossParallelism extends the contract to the
// uniform sampler: the returned copy is identical at any parallelism.
func TestSampleDeterministicAcrossParallelism(t *testing.T) {
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	g := streamcount.ErdosRenyi(rng, 40, 250)
	if streamcount.ExactCount(g, p) == 0 {
		t.Skip("no triangles in workload")
	}
	st := streamcount.StreamFromGraph(g)
	run := func(parallelism int) (streamcount.SampledCopy, bool) {
		cp, ok, err := streamcount.Sample(st, streamcount.Config{
			Pattern: p, Trials: 2000, Seed: 9, Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cp, ok
	}
	base, okBase := run(1)
	for _, par := range []int{2, 8} {
		cp, ok := run(par)
		if ok != okBase {
			t.Fatalf("parallelism %d: ok=%v, want %v", par, ok, okBase)
		}
		if !ok {
			continue
		}
		if len(cp.Edges) != len(base.Edges) {
			t.Fatalf("parallelism %d: %d edges, want %d", par, len(cp.Edges), len(base.Edges))
		}
		for i := range cp.Edges {
			if cp.Edges[i] != base.Edges[i] {
				t.Errorf("parallelism %d: edge %d = %v, want %v", par, i, cp.Edges[i], base.Edges[i])
			}
		}
	}
}

// TestShuffledStreamFileBacked covers the former panic: shuffling a
// file-backed stream must materialize it rather than crash on the type
// assertion.
func TestShuffledStreamFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.txt")
	content := "4\n+ 0 1\n+ 1 2\n+ 2 3\n+ 0 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := streamcount.OpenStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := streamcount.ShuffledStream(st, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if sh.Len() != 4 || sh.N() != 4 {
		t.Errorf("shuffled stream: len=%d n=%d, want 4, 4", sh.Len(), sh.N())
	}
	seen := 0
	if err := sh.ForEach(func(streamcount.Update) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 4 {
		t.Errorf("replayed %d updates, want 4", seen)
	}
}
