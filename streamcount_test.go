// The tests in this file exercise the DEPRECATED pre-query-API surface
// (Estimate/Sample/..., Config, Session) on purpose: the wrappers are thin
// shims over the query API and must keep behaving exactly as before so
// downstream callers can migrate incrementally. New-API coverage lives in
// query_test.go.
package streamcount_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"streamcount"
)

//lint:file-ignore SA1019 this file pins the deprecated legacy wrappers on purpose.

func TestFacadeQuickstart(t *testing.T) {
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	g := streamcount.ErdosRenyi(rng, 30, 150)
	want := streamcount.ExactCount(g, p)
	if want == 0 {
		t.Skip("no triangles in workload")
	}
	est, err := streamcount.Estimate(streamcount.StreamFromGraph(g), streamcount.Config{
		Pattern: p,
		Trials:  40000,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Passes != 3 {
		t.Errorf("passes=%d, want 3", est.Passes)
	}
	if e := math.Abs(est.Value-float64(want)) / float64(want); e > 0.3 {
		t.Errorf("estimate %.1f vs %d: rel err %.3f", est.Value, want, e)
	}
}

func TestFacadeDerivedTrials(t *testing.T) {
	p, _ := streamcount.PatternByName("triangle")
	rng := rand.New(rand.NewSource(2))
	g := streamcount.ErdosRenyi(rng, 25, 120)
	want := streamcount.ExactCount(g, p)
	if want < 10 {
		t.Skip("too few triangles")
	}
	st := streamcount.StreamFromGraph(g)
	est, err := streamcount.Estimate(st, streamcount.Config{
		Pattern:    p,
		Epsilon:    0.3,
		LowerBound: float64(want),
		EdgeBound:  g.M(),
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials < 1 {
		t.Errorf("derived trials=%d", est.Trials)
	}
	if e := math.Abs(est.Value-float64(want)) / float64(want); e > 0.6 {
		t.Errorf("estimate %.1f vs %d: rel err %.3f", est.Value, want, e)
	}
}

func TestFacadeConfigErrors(t *testing.T) {
	st, _ := streamcount.NewStream(3, nil)
	if _, err := streamcount.Estimate(st, streamcount.Config{}); err == nil {
		t.Error("missing pattern should error")
	}
	p, _ := streamcount.PatternByName("triangle")
	if _, err := streamcount.Estimate(st, streamcount.Config{Pattern: p}); err == nil {
		t.Error("missing trials derivation inputs should error")
	}
}

func TestFacadeSample(t *testing.T) {
	p, _ := streamcount.PatternByName("triangle")
	rng := rand.New(rand.NewSource(4))
	g := streamcount.ErdosRenyi(rng, 20, 80)
	if streamcount.ExactCount(g, p) == 0 {
		t.Skip("no triangles")
	}
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		cp, ok, err := streamcount.Sample(streamcount.StreamFromGraph(g), streamcount.Config{
			Pattern: p, Trials: 500, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			found = true
			if len(cp.Edges) != 3 {
				t.Errorf("sampled copy has %d edges", len(cp.Edges))
			}
			for _, e := range cp.Edges {
				if !g.HasEdge(e.U, e.V) {
					t.Errorf("edge %v not in graph", e)
				}
			}
		}
	}
	if !found {
		t.Error("no sample in 20 attempts")
	}
}

func TestFacadeEstimateCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := streamcount.BarabasiAlbert(rng, 200, 3)
	p, _ := streamcount.PatternByName("K3")
	want := streamcount.ExactCount(g, p)
	if want < 20 {
		t.Skipf("too few triangles: %d", want)
	}
	lambda, _ := streamcount.Degeneracy(g)
	est, err := streamcount.EstimateCliques(streamcount.StreamFromGraph(g), streamcount.CliqueConfig{
		R:          3,
		Lambda:     lambda,
		Epsilon:    0.4,
		LowerBound: float64(want) / 2,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Passes > 15 {
		t.Errorf("passes=%d exceeds 5r=15", est.Passes)
	}
	if e := math.Abs(est.Value-float64(want)) / float64(want); e > 0.6 {
		t.Errorf("estimate %.1f vs %d: rel err %.3f", est.Value, want, e)
	}
}

func TestFacadeEstimateCliquesRejectsTurnstile(t *testing.T) {
	var ups []streamcount.Update
	ups = append(ups,
		streamcount.Update{Edge: streamcount.Edge{U: 0, V: 1}, Op: streamcount.Insert},
		streamcount.Update{Edge: streamcount.Edge{U: 0, V: 1}, Op: streamcount.Delete},
	)
	st, err := streamcount.NewStream(3, ups)
	if err != nil {
		t.Fatal(err)
	}
	_, err = streamcount.EstimateCliques(st, streamcount.CliqueConfig{R: 3, Lambda: 1, Epsilon: 0.4, LowerBound: 1})
	if err == nil || !strings.Contains(err.Error(), "insertion-only") {
		t.Errorf("want insertion-only error, got %v", err)
	}
}

// TestFacadeSession exercises the session API end to end: several patterns
// served by one shared replay, each bit-identical to its standalone run.
func TestFacadeSession(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := streamcount.ErdosRenyi(rng, 80, 600)
	st := streamcount.StreamFromGraph(g)

	names := []string{"triangle", "C5", "paw"}
	configs := make([]streamcount.Config, len(names))
	standalone := make([]*streamcount.Result, len(names))
	for i, name := range names {
		p, err := streamcount.PatternByName(name)
		if err != nil {
			t.Fatal(err)
		}
		configs[i] = streamcount.Config{Pattern: p, Trials: 3000, Seed: int64(20 + i)}
		standalone[i], err = streamcount.Estimate(st, configs[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	s := streamcount.NewSession(st)
	handles := make([]*streamcount.JobHandle, len(names))
	for i := range configs {
		handles[i] = s.Submit(streamcount.Job{Kind: streamcount.JobEstimate, Config: configs[i]})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		got, err := h.Estimate()
		if err != nil {
			t.Fatalf("%s: %v", names[i], err)
		}
		if *got != *standalone[i] {
			t.Errorf("%s: session %+v != standalone %+v", names[i], *got, *standalone[i])
		}
	}
	if s.Passes() != 3 {
		t.Errorf("shared passes=%d, want 3 for %d jobs", s.Passes(), len(names))
	}
}

func TestFacadeReadGraph(t *testing.T) {
	in := "3 2\n0 1\n1 2\n"
	g, err := streamcount.ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
}

func TestTrialsFor(t *testing.T) {
	if k := streamcount.TrialsFor(100, 1.5, 0.1, 10); k < 100 {
		t.Errorf("TrialsFor too small: %d", k)
	}
	if k := streamcount.TrialsFor(0, 1.5, 0.1, 10); k != 1 {
		t.Errorf("empty graph trials=%d, want 1", k)
	}
}
