package streamcount

import (
	"context"
	"fmt"
	"time"

	"streamcount/internal/core"
)

// An Engine is a long-lived query service over one or more replayable
// streams — the embeddable form of the library for servers that admit
// queries continuously under deadlines. Create it once, then call Submit
// (or the typed Do) from any goroutine at any time; Close it when done.
//
// An admission controller groups queries that arrive close together —
// within the admission window while the engine is idle, or while the
// current batch is being served — into successive shared-replay "generations".
// All queries of a generation ride the same passes, so K overlapping
// queries cost max-rounds passes over the stream per generation instead of
// the sum (DESIGN.md §3). Results are bit-identical to standalone runs at
// the same seed, no matter how admission sliced the arrivals.
//
// Cancellation: Submit honors its context — on cancel it returns an error
// wrapping ErrCanceled, the abandoned job unwinds at its next pass
// boundary, and a generation none of whose submitters is still listening
// aborts its replay between batches. The engine stays serviceable
// throughout; a canceled query can simply be resubmitted.
type Engine struct {
	eng *core.Engine
}

// EngineOption configures NewEngine.
type EngineOption func(*core.EngineOptions)

// WithAdmissionWindow sets how long an idle engine waits after a query
// arrives for more queries to share its generation with. Zero (the default)
// serves the first arrival immediately; under load the window is moot,
// because everything arriving during a running generation is admitted into
// the next one anyway. Larger windows trade latency for fewer passes.
func WithAdmissionWindow(d time.Duration) EngineOption {
	return func(o *core.EngineOptions) { o.Window = d }
}

// WithWatchCheckpointMB bounds the engine's watch checkpoint cache — the
// resident per-stream indexes behind the standing queries' O(Δ) fast path
// (DESIGN.md §10) — to mb mebibytes. 0 keeps the default (64 MiB); a
// negative value disables the cache, making every watch evaluation replay
// its full pinned prefix. Events are bit-identical either way; the cache
// only changes how fast they arrive.
func WithWatchCheckpointMB(mb int) EngineOption {
	return func(o *core.EngineOptions) {
		if mb < 0 {
			o.WatchCheckpointBytes = -1
		} else {
			o.WatchCheckpointBytes = int64(mb) << 20
		}
	}
}

// WithResultCacheMB bounds the engine's cross-generation result cache
// (DESIGN.md §13) to mb mebibytes. 0 or negative (the default) disables
// it: every submission admits a generation, exactly as before the cache
// existed. With the cache on, a query repeated at an unchanged stream
// version — same canonical query, same seed — is served from the memo
// with zero stream passes, and is byte-identical to the cold result by
// the determinism contract. Entries are pinned to the stream version they
// were computed at, so appends never invalidate anything; eviction is
// purely size-LRU plus the TTL.
func WithResultCacheMB(mb int) EngineOption {
	return func(o *core.EngineOptions) {
		if mb <= 0 {
			o.ResultCacheBytes = 0
		} else {
			o.ResultCacheBytes = int64(mb) << 20
		}
	}
}

// WithResultCacheTTL sets the per-entry lifetime of memoized results (0,
// the default: entries never expire; the capacity bound still evicts).
func WithResultCacheTTL(d time.Duration) EngineOption {
	return func(o *core.EngineOptions) { o.ResultCacheTTL = d }
}

// ResultCacheStats is the engine-wide health of the cross-generation
// result cache (DESIGN.md §13).
type ResultCacheStats struct {
	// Hits counts submissions served from a memoized result — no
	// generation, no stream pass.
	Hits int64
	// Misses counts cache-consulting submissions that ran for real (and
	// populated the cache on success).
	Misses int64
	// Evictions counts entries dropped by the capacity bound.
	Evictions int64
	// Expirations counts entries dropped by the TTL.
	Expirations int64
	// ResidentBytes is the accounted size of all memoized results.
	ResidentBytes int64
	// CapacityBytes is the configured bound; 0 when the cache is disabled.
	CapacityBytes int64
	// Entries is the number of resident memoized results.
	Entries int
}

// ResultCacheStats reports the result cache's aggregate counters (all
// zeros when the cache is disabled).
func (e *Engine) ResultCacheStats() ResultCacheStats {
	s := e.eng.ResultCacheStats()
	return ResultCacheStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		Expirations:   s.Expirations,
		ResidentBytes: s.ResidentBytes,
		CapacityBytes: s.CapacityBytes,
		Entries:       s.Entries,
	}
}

// ContextWithPriority tags ctx with an admission priority lane: within one
// admission window, higher-priority queries are served in an earlier
// shared-replay generation than lower-priority ones (the multi-tenant
// weighted admission order, DESIGN.md §13). 0 is the default lane.
// Priority affects scheduling order only — results are bit-identical at
// the same (seed, stream_version) regardless.
func ContextWithPriority(ctx context.Context, p int) context.Context {
	return core.WithPriority(ctx, p)
}

// WatchCheckpointStats is the engine-wide health of the watch checkpoint
// cache (DESIGN.md §10).
type WatchCheckpointStats struct {
	// Hits counts watch evaluations served incrementally from a resident
	// index — the O(Δ) fast path.
	Hits int64
	// Misses counts evaluations that first had to (re)build a stream's index
	// from a full replay (cold cache or post-eviction).
	Misses int64
	// Evictions counts resident indexes dropped by the capacity bound.
	Evictions int64
	// Spills counts evicted (or deliberately flushed) indexes persisted to
	// their stream's WATCHIDX file next to the segments, for warm rebuilds.
	Spills int64
	// SpillLoads counts misses warmed from a spilled index instead of a full
	// replay.
	SpillLoads int64
	// ResidentBytes is the accounted size of all resident indexes.
	ResidentBytes int64
	// CapacityBytes is the configured bound; 0 when the cache is disabled.
	CapacityBytes int64
}

// WatchCheckpointStats reports the checkpoint cache's aggregate counters.
func (e *Engine) WatchCheckpointStats() WatchCheckpointStats {
	s := e.eng.WatchCheckpointStats()
	return WatchCheckpointStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		Spills:        s.Spills,
		SpillLoads:    s.SpillLoads,
		ResidentBytes: s.ResidentBytes,
		CapacityBytes: s.CapacityBytes,
	}
}

// SpillWatchCheckpoint flushes the named stream's resident watch-checkpoint
// index to the WATCHIDX file in its segment directory without evicting it.
// A cluster transfer calls this just before sealing the stream so the
// shipped directory carries the warm index — the first watch event on the
// new owner extends it by Δ instead of replaying the whole prefix. Streams
// with no resident index or no durable directory are a successful no-op.
func (e *Engine) SpillWatchCheckpoint(name string) error {
	return e.eng.SpillWatchCheckpoint(name)
}

// NewEngine creates an engine over st and starts serving immediately.
// Register more streams with RegisterStream; stop the engine with Close.
func NewEngine(st Stream, opts ...EngineOption) *Engine {
	var o core.EngineOptions
	for _, opt := range opts {
		opt(&o)
	}
	return &Engine{eng: core.NewEngine(st, o)}
}

// RegisterStream adds a named stream to the engine. Named streams are
// served independently — each has its own admission queue and generations —
// and are queried with SubmitOn / DoOn.
func (e *Engine) RegisterStream(name string, st Stream) error {
	return e.eng.Register(name, st)
}

// UnregisterStream removes a named stream from the engine: queued and new
// submissions, appends and watches on the name fail with ErrUnknownStream,
// and the stream's checkpoint index is dropped. It blocks until the
// in-flight generation (if any) finishes, so on return the engine holds no
// replay over the stream and the caller may retire its backing state — the
// cluster transfer path hands a segment directory to another node exactly
// then. The default stream cannot be unregistered.
func (e *Engine) UnregisterStream(name string) error {
	return e.eng.Unregister(name)
}

// Streams returns the registered stream names in sorted order. The default
// stream is the empty name.
func (e *Engine) Streams() []string { return e.eng.Streams() }

// Lookup returns the stream registered under name, if any. It is how
// service layers read per-stream metadata (vertex count, insert-only) for
// stats without keeping a registry of their own.
func (e *Engine) Lookup(name string) (Stream, bool) { return e.eng.Lookup(name) }

// Submit runs q on the engine's default stream and blocks until the
// admission generation that adopted it completes (or ctx is done). The
// untyped Outcome carries the one result field matching the query's kind;
// homogeneous callers should prefer the typed Do.
func (e *Engine) Submit(ctx context.Context, q Query) (Outcome, error) {
	return e.SubmitOn(ctx, core.DefaultStream, q)
}

// SubmitOn is Submit against a registered named stream.
func (e *Engine) SubmitOn(ctx context.Context, stream string, q Query) (Outcome, error) {
	h, err := e.submit(ctx, stream, q)
	if err != nil {
		return Outcome{Kind: q.Kind()}, err
	}
	o := q.outcome(h)
	o.StreamVersion = h.StreamVersion()
	return o, nil
}

// submit lowers q to a core job and rides the core engine. The edge-bound
// default stays symbolic (core.EdgeBoundStreamLen) so a derived trial
// budget resolves against the admission generation's pinned stream version,
// not the length at submission time.
func (e *Engine) submit(ctx context.Context, name string, q Query) (*core.JobHandle, error) {
	if _, ok := e.eng.Lookup(name); !ok {
		return nil, fmt.Errorf("streamcount: Submit on %q: %w", name, ErrUnknownStream)
	}
	j, err := q.job(core.EdgeBoundStreamLen)
	if err != nil {
		return nil, err
	}
	// The fingerprint is only computed when a cache exists to use it, so
	// the default (cache-off) submit path allocates exactly what it did
	// before the cache was added.
	if e.eng.ResultCacheEnabled() {
		j.Fingerprint = fingerprintOf(q)
	}
	return e.eng.SubmitTo(ctx, name, j)
}

// Do runs q on the querier's default stream and returns its typed result:
//
//	est, err := streamcount.Do(ctx, engine, streamcount.CountQuery(p,
//	    streamcount.WithTrials(100000)))
//
// It is Querier.Submit with the result statically typed by the query. The
// querier may be a local *Engine or the client package's remote Client —
// the call site is identical either way.
func Do[R any](ctx context.Context, qr Querier, q TypedQuery[R]) (R, error) {
	return DoOn(ctx, qr, core.DefaultStream, q)
}

// DoOn is Do against a named stream.
func DoOn[R any](ctx context.Context, qr Querier, stream string, q TypedQuery[R]) (R, error) {
	var zero R
	o, err := qr.SubmitOn(ctx, stream, q)
	if err != nil {
		return zero, err
	}
	return q.fromOutcome(o)
}

// Append publishes updates to the named registered stream's append-only
// log and returns the new stream version. The stream must have been
// registered as an *AppendableStream (ErrNotAppendable otherwise; the
// default stream is named ""). Appends may race queries freely: a running
// generation replays the immutable prefix it pinned at its barrier, and the
// appended updates are first visible to generations sealed after Append
// returned.
func (e *Engine) Append(name string, ups []Update) (int64, error) {
	return e.eng.Append(name, ups)
}

// AppendKeyed is Append under an idempotency key. For durable streams the
// key and the batch's log range are recorded in the stream's receipt log
// before the batch's data, so a restarted process can rebuild which
// acknowledged keyed appends survived (AppendableStream.Receipts) and
// replay their receipts to retries instead of double-publishing. An empty
// key is a plain Append.
func (e *Engine) AppendKeyed(name, key string, ups []Update) (int64, error) {
	return e.eng.AppendKeyed(name, key, ups)
}

// StreamVersion returns the named stream's current version — the
// append-only log length for appendable streams, the static length
// otherwise. A query submitted now is served at this version or a later
// one, depending on admission timing; the authoritative value is the
// Outcome's StreamVersion.
func (e *Engine) StreamVersion(name string) (int64, error) {
	return e.eng.VersionOf(name)
}

// Passes returns the number of shared passes performed over the default
// stream so far. Under concurrent load it grows like 3 per generation, not
// 3 per query.
func (e *Engine) Passes() int64 { return e.eng.Passes() }

// PassesOn returns the number of shared passes performed over the named
// stream so far.
func (e *Engine) PassesOn(stream string) int64 { return e.eng.PassesOn(stream) }

// Generations returns the number of admission generations served so far
// across all streams.
func (e *Engine) Generations() int64 { return e.eng.Generations() }

// Close shuts the engine down: the running generation aborts between
// batches, queued queries fail with ErrEngineClosed, and later Submits are
// rejected. Close blocks until the engine is idle and is idempotent.
func (e *Engine) Close() error { return e.eng.Close() }
