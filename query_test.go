package streamcount_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"streamcount"
)

//lint:file-ignore SA1019 the new-API tests pin the deprecated wrappers as references on purpose.

func queryWorkload(t testing.TB) (*streamcount.Graph, streamcount.Stream) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := streamcount.ErdosRenyi(rng, 100, 900)
	return g, streamcount.StreamFromGraph(g)
}

// TestRunCountQueryMatchesLegacyEstimate: the typed query path is the same
// computation as the legacy wrapper — bit-identical at a fixed seed.
func TestRunCountQueryMatchesLegacyEstimate(t *testing.T) {
	_, st := queryWorkload(t)
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	want, err := streamcount.Estimate(st, streamcount.Config{Pattern: p, Trials: 5000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	got, err := streamcount.Run(context.Background(), st,
		streamcount.CountQuery(p, streamcount.WithTrials(5000), streamcount.WithSeed(21)))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("CountQuery %+v != legacy Estimate %+v", *got, *want)
	}
}

// TestCountQueryDefaultsEdgeBoundToStreamLength: deriving the trial budget
// needs an edge bound; the query layer defaults it to the stream length so
// WithEpsilon+WithLowerBound alone are a complete specification.
func TestCountQueryDefaultsEdgeBoundToStreamLength(t *testing.T) {
	g, st := queryWorkload(t)
	p, _ := streamcount.PatternByName("triangle")
	want := streamcount.ExactCount(g, p)
	if want == 0 {
		t.Skip("no triangles in workload")
	}
	got, err := streamcount.Run(context.Background(), st, streamcount.CountQuery(p,
		streamcount.WithEpsilon(0.3),
		streamcount.WithLowerBound(float64(want)),
		streamcount.WithSeed(2),
	))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trials < 1 {
		t.Errorf("derived trials = %d", got.Trials)
	}
	// Same query with the explicit stream-length bound must be identical.
	explicit, err := streamcount.Run(context.Background(), st, streamcount.CountQuery(p,
		streamcount.WithEpsilon(0.3),
		streamcount.WithLowerBound(float64(want)),
		streamcount.WithEdgeBound(st.Len()),
		streamcount.WithSeed(2),
	))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *explicit {
		t.Errorf("default edge bound %+v != explicit stream length %+v", *got, *explicit)
	}
	// The legacy wrapper, by contrast, rejects the underivable config.
	_, err = streamcount.Estimate(st, streamcount.Config{Pattern: p, Epsilon: 0.3, LowerBound: float64(want)})
	if !errors.Is(err, streamcount.ErrBadConfig) {
		t.Errorf("legacy underivable config error = %v, want ErrBadConfig", err)
	}
}

// TestAutoQueryEpsilonDefaultFixed pins the satellite fix: AutoQuery
// defaults ε to 0.1 (like everything else), while the legacy wrapper keeps
// its historical 0.2 default.
func TestAutoQueryEpsilonDefaultFixed(t *testing.T) {
	_, st := queryWorkload(t)
	p, _ := streamcount.PatternByName("triangle")

	got, err := streamcount.Run(context.Background(), st,
		streamcount.AutoQuery(p, streamcount.WithSeed(4)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := streamcount.EstimateAuto(st, streamcount.Config{
		Pattern: p, Epsilon: 0.1, EdgeBound: st.Len(), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("AutoQuery default ε: %+v != legacy at explicit ε=0.1 %+v", *got, *want)
	}
	legacyDefault, err := streamcount.EstimateAuto(st, streamcount.Config{
		Pattern: p, EdgeBound: st.Len(), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	want02, err := streamcount.EstimateAuto(st, streamcount.Config{
		Pattern: p, Epsilon: 0.2, EdgeBound: st.Len(), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if *legacyDefault != *want02 {
		t.Errorf("legacy unset-ε auto %+v != legacy ε=0.2 %+v", *legacyDefault, *want02)
	}

	// The stream-length edge-bound default applies to Auto even when a trial
	// budget is given (the geometric search always needs the AGM start m^ρ;
	// it derives its per-guess budgets itself, so WithTrials does not pin
	// them — but it must not make the query unrunnable either).
	fixed, err := streamcount.Run(context.Background(), st,
		streamcount.AutoQuery(p, streamcount.WithTrials(2000), streamcount.WithSeed(4)))
	if err != nil {
		t.Fatalf("AutoQuery with WithTrials: %v", err)
	}
	if fixed.Trials < 1 {
		t.Errorf("auto search reported %d trials", fixed.Trials)
	}
}

// TestRunTypedQueries exercises every query kind end to end through the
// typed Run.
func TestRunTypedQueries(t *testing.T) {
	g, st := queryWorkload(t)
	ctx := context.Background()
	p, _ := streamcount.PatternByName("triangle")
	exact := streamcount.ExactCount(g, p)
	if exact == 0 {
		t.Skip("no triangles in workload")
	}

	if est, err := streamcount.Run(ctx, st, streamcount.CountQuery(p,
		streamcount.WithTrials(40000), streamcount.WithSeed(1))); err != nil {
		t.Fatal(err)
	} else if est.Passes != 3 {
		t.Errorf("count passes=%d, want 3", est.Passes)
	}

	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		sr, err := streamcount.Run(ctx, st, streamcount.SampleQuery(p,
			streamcount.WithTrials(500), streamcount.WithSeed(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if sr.Found {
			found = true
			if len(sr.Copy.Edges) != 3 {
				t.Errorf("sampled copy has %d edges", len(sr.Copy.Edges))
			}
			if sr.Passes != 3 {
				t.Errorf("sample passes=%d, want 3", sr.Passes)
			}
		}
	}
	if !found {
		t.Error("no sample in 20 attempts")
	}

	lambda, _ := streamcount.Degeneracy(g)
	clq, err := streamcount.Run(ctx, st, streamcount.CliqueQuery(3,
		streamcount.WithLambda(lambda),
		streamcount.WithEpsilon(0.4),
		streamcount.WithLowerBound(float64(exact)/2),
		streamcount.WithSeed(6),
	))
	if err != nil {
		t.Fatal(err)
	}
	if clq.Passes > 15 {
		t.Errorf("clique passes=%d exceeds 5r=15", clq.Passes)
	}

	dec, err := streamcount.Run(ctx, st, streamcount.DistinguishQuery(p, float64(exact)/4,
		streamcount.WithTrials(40000), streamcount.WithEpsilon(0.4), streamcount.WithSeed(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Above {
		t.Errorf("distinguish at l=#H/4 should report above; estimate %v", dec.Estimate.Value)
	}
	if dec.Estimate == nil || dec.Estimate.Passes != 3 {
		t.Errorf("distinguish estimate %+v, want 3 passes", dec.Estimate)
	}
}

// TestQueryValidationErrors: constructor misuse surfaces typed sentinels.
func TestQueryValidationErrors(t *testing.T) {
	_, st := queryWorkload(t)
	ctx := context.Background()
	p, _ := streamcount.PatternByName("triangle")

	if _, err := streamcount.Run(ctx, st, streamcount.CountQuery(nil)); !errors.Is(err, streamcount.ErrBadPattern) {
		t.Errorf("nil pattern: %v, want ErrBadPattern", err)
	}
	if _, err := streamcount.Run(ctx, st, streamcount.CliqueQuery(2, streamcount.WithLambda(3), streamcount.WithLowerBound(1))); !errors.Is(err, streamcount.ErrBadConfig) {
		t.Errorf("r<3: %v, want ErrBadConfig", err)
	}
	if _, err := streamcount.Run(ctx, st, streamcount.CliqueQuery(3, streamcount.WithLowerBound(1))); !errors.Is(err, streamcount.ErrBadConfig) {
		t.Errorf("missing lambda: %v, want ErrBadConfig", err)
	}
	if _, err := streamcount.Run(ctx, st, streamcount.DistinguishQuery(p, 0, streamcount.WithTrials(10))); !errors.Is(err, streamcount.ErrBadConfig) {
		t.Errorf("zero threshold: %v, want ErrBadConfig", err)
	}
}

// TestRunHonorsContext: an already-canceled context fails with ErrCanceled
// before any pass, and both sentinel and context error match.
func TestRunHonorsContext(t *testing.T) {
	_, st := queryWorkload(t)
	p, _ := streamcount.PatternByName("triangle")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := streamcount.Run(ctx, st, streamcount.CountQuery(p,
		streamcount.WithTrials(1000), streamcount.WithSeed(1)))
	if !errors.Is(err, streamcount.ErrCanceled) {
		t.Errorf("error = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, should also match context.Canceled", err)
	}
}

// TestEngineFacade: heterogeneous queries through one Engine, typed Do,
// untyped Submit outcomes, named streams, and bit-identity to Run.
func TestEngineFacade(t *testing.T) {
	_, st := queryWorkload(t)
	ctx := context.Background()
	p, _ := streamcount.PatternByName("triangle")
	c5, _ := streamcount.PatternByName("C5")

	e := streamcount.NewEngine(st, streamcount.WithAdmissionWindow(20*time.Millisecond))
	defer e.Close()

	countQ := streamcount.CountQuery(p, streamcount.WithTrials(4000), streamcount.WithSeed(31))
	want, err := streamcount.Run(ctx, st, countQ)
	if err != nil {
		t.Fatal(err)
	}

	type done struct {
		est *streamcount.CountResult
		err error
	}
	ch := make(chan done, 1)
	go func() {
		est, err := streamcount.Do(ctx, e, countQ)
		ch <- done{est, err}
	}()
	// A second, differently-shaped query rides the same engine concurrently.
	out, err := e.Submit(ctx, streamcount.CountQuery(c5, streamcount.WithTrials(2000), streamcount.WithSeed(32)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != "count" || out.Count == nil || out.Sample != nil || out.Decision != nil {
		t.Errorf("outcome %+v: want only Count set", out)
	}
	first := <-ch
	if first.err != nil {
		t.Fatal(first.err)
	}
	if *first.est != *want {
		t.Errorf("engine Do %+v != one-shot Run %+v", *first.est, *want)
	}

	// Named stream registry.
	rng := rand.New(rand.NewSource(12))
	g2 := streamcount.ErdosRenyi(rng, 60, 400)
	st2 := streamcount.StreamFromGraph(g2)
	if err := e.RegisterStream("other", st2); err != nil {
		t.Fatal(err)
	}
	want2, err := streamcount.Run(ctx, st2, countQ)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := streamcount.DoOn(ctx, e, "other", countQ)
	if err != nil {
		t.Fatal(err)
	}
	if *got2 != *want2 {
		t.Errorf("named stream Do %+v != Run %+v", *got2, *want2)
	}
	if _, err := streamcount.DoOn(ctx, e, "missing", countQ); !errors.Is(err, streamcount.ErrUnknownStream) {
		t.Errorf("unknown stream: %v, want ErrUnknownStream", err)
	}

	// Sanity on the sharing accounting: every generation of 3-round jobs
	// costs 3 passes on its lane.
	if got, gens := e.Passes()+e.PassesOn("other"), e.Generations(); got != 3*gens {
		t.Errorf("passes=%d, want 3*generations=%d", got, 3*gens)
	}
}

// TestEngineFacadeClose: close rejects new queries with ErrEngineClosed.
func TestEngineFacadeClose(t *testing.T) {
	_, st := queryWorkload(t)
	p, _ := streamcount.PatternByName("triangle")
	e := streamcount.NewEngine(st)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := streamcount.Do(context.Background(), e,
		streamcount.CountQuery(p, streamcount.WithTrials(10)))
	if !errors.Is(err, streamcount.ErrEngineClosed) {
		t.Errorf("submit after close: %v, want ErrEngineClosed", err)
	}
}
