package streamcount_test

// The result-cache half of the cross-process determinism suite
// (DESIGN.md §13): a query served memoized from the cross-generation
// result cache must be bit-identical to a standalone run performed by a
// pristine process at the same (query, seed, stream version). The parent
// proves each warm submission really was a hit (zero new generations),
// then hands nothing but the pinned versions to a child process that
// recomputes from scratch.

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"streamcount"
)

const (
	rcacheXSeed   = 13
	rcacheXTrials = 800
	rcacheXNodes  = 500
	rcacheXEdges  = 2500
)

// rcacheUpdates is the deterministic insertion sequence both processes
// rebuild independently.
func rcacheUpdates(t testing.TB) []streamcount.Update {
	t.Helper()
	rng := rand.New(rand.NewSource(51))
	g := streamcount.ErdosRenyi(rng, rcacheXNodes, rcacheXEdges)
	var ups []streamcount.Update
	for _, e := range g.Edges() {
		ups = append(ups, streamcount.Update{Edge: e, Op: streamcount.Insert})
	}
	return ups
}

func rcacheQuery(t testing.TB) streamcount.TypedQuery[*streamcount.CountResult] {
	t.Helper()
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	return streamcount.CountQuery(p, streamcount.WithTrials(rcacheXTrials), streamcount.WithSeed(rcacheXSeed))
}

// TestResultCacheDeterminismChild replays the log to each requested version
// and runs the reference query standalone, printing one fingerprint per
// version. No engine or cache machinery runs in this process.
func TestResultCacheDeterminismChild(t *testing.T) {
	spec := os.Getenv("STREAMCOUNT_RCACHE_CHILD")
	if spec == "" {
		t.Skip("child mode only (driven by TestResultCacheDeterminismCrossProcess)")
	}
	app, err := streamcount.NewAppendableStream(rcacheXNodes, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Append(rcacheUpdates(t)); err != nil {
		t.Fatal(err)
	}
	q := rcacheQuery(t)
	for _, vStr := range strings.Split(spec, ",") {
		v, err := strconv.ParseInt(vStr, 10, 64)
		if err != nil {
			t.Fatalf("bad version %q: %v", vStr, err)
		}
		view, err := app.At(v)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := streamcount.Run(context.Background(), view, q)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("RCACHECHILD %d %s\n", v, watchFingerprint(ref))
	}
}

// TestResultCacheDeterminismCrossProcess submits the same query cold and
// warm at two pinned versions, proves the warm submissions were served
// memoized (no new generations), and checks every served result — cold and
// cached alike — against a pristine process's standalone recomputation.
func TestResultCacheDeterminismCrossProcess(t *testing.T) {
	if os.Getenv("STREAMCOUNT_RCACHE_CHILD") != "" {
		t.Skip("already in child mode")
	}
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}

	app, err := streamcount.NewAppendableStream(rcacheXNodes, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := streamcount.NewEngine(app, streamcount.WithResultCacheMB(8))
	defer e.Close()

	ups := rcacheUpdates(t)
	q := rcacheQuery(t)
	ctx := context.Background()

	// Two pinned versions; at each, a cold submission then a warm one that
	// must be a pure cache hit: same bits, no new generation.
	type pinned struct {
		v  int64
		fp string
	}
	var pins []pinned
	for _, cut := range []int{len(ups) / 2, len(ups)} {
		var start int
		if len(pins) > 0 {
			start = len(ups) / 2
		}
		v, err := e.Append("", ups[start:cut])
		if err != nil {
			t.Fatal(err)
		}
		cold, err := streamcount.DoOn(ctx, e, "", q)
		if err != nil {
			t.Fatal(err)
		}
		gens := e.Generations()
		warm, err := streamcount.DoOn(ctx, e, "", q)
		if err != nil {
			t.Fatal(err)
		}
		if g := e.Generations(); g != gens {
			t.Fatalf("warm submission at v%d admitted a generation (%d -> %d)", v, gens, g)
		}
		if watchFingerprint(warm) != watchFingerprint(cold) {
			t.Fatalf("warm result diverged at v%d:\n  cold: %s\n  warm: %s",
				v, watchFingerprint(cold), watchFingerprint(warm))
		}
		pins = append(pins, pinned{v, watchFingerprint(warm)})
	}
	st := e.ResultCacheStats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("cache stats hits=%d misses=%d, want 2/2 (a new version is a new key, never an invalidation)", st.Hits, st.Misses)
	}

	// A pristine process reproduces both cache-served results from nothing
	// but the pinned versions.
	spec := make([]string, len(pins))
	for i, p := range pins {
		spec[i] = strconv.FormatInt(p.v, 10)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestResultCacheDeterminismChild$", "-test.v")
	cmd.Env = append(os.Environ(), "STREAMCOUNT_RCACHE_CHILD="+strings.Join(spec, ","))
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}
	theirs := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		rest, ok := strings.CutPrefix(sc.Text(), "RCACHECHILD ")
		if !ok {
			continue
		}
		v, fp, ok := strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("malformed child line %q", sc.Text())
		}
		theirs[v] = fp
	}
	if len(theirs) != len(pins) {
		t.Fatalf("child reproduced %d entries, want %d:\n%s", len(theirs), len(pins), out)
	}
	for _, p := range pins {
		key := strconv.FormatInt(p.v, 10)
		if theirs[key] != p.fp {
			t.Errorf("cross-process mismatch at version %d:\n  cache-served:  %s\n  child process: %s", p.v, p.fp, theirs[key])
		}
	}
	t.Logf("verified %d cache-served results against a pristine process", len(pins))
}
