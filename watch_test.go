package streamcount_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"streamcount"
)

// watchUpdates is the deterministic edge sequence the watch tests ingest.
func watchUpdates(t testing.TB) []streamcount.Update {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	g := streamcount.ErdosRenyi(rng, 100, 900)
	var ups []streamcount.Update
	for _, e := range g.Edges() {
		ups = append(ups, streamcount.Update{Edge: e, Op: streamcount.Insert})
	}
	return ups
}

func watchEngine(t *testing.T) (*streamcount.Engine, *streamcount.AppendableStream) {
	t.Helper()
	app, err := streamcount.NewAppendableStream(100, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := streamcount.NewEngine(app)
	t.Cleanup(func() { e.Close() })
	return e, app
}

// TestWatchTypedEvents: the typed Watch delivers ordered, version-pinned
// *CountResult events, each bit-identical to a standalone Run over the same
// prefix at the derived seed — the facade half of the determinism contract.
func TestWatchTypedEvents(t *testing.T) {
	e, app := watchEngine(t)
	ups := watchUpdates(t)
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 5
	q := streamcount.CountQuery(p, streamcount.WithTrials(1200), streamcount.WithSeed(seed))
	sub, err := streamcount.Watch(context.Background(), e, "", q, streamcount.WatchEveryVersion())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var versions []int64
	for _, cut := range []int{300, 600, 900} {
		start := 0
		if len(versions) > 0 {
			start = int(versions[len(versions)-1])
		}
		v, err := e.Append("", ups[start:cut])
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, v)
	}

	for i, wantV := range versions {
		select {
		case ev := <-sub.Events():
			if ev.Err != nil {
				t.Fatalf("event %d: %v", i, ev.Err)
			}
			if ev.StreamVersion != wantV || ev.Generation != int64(i) {
				t.Fatalf("event %d: version %d generation %d, want %d/%d", i, ev.StreamVersion, ev.Generation, wantV, i)
			}
			view, err := app.At(wantV)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := streamcount.Run(context.Background(), view, streamcount.CountQuery(p,
				streamcount.WithTrials(1200),
				streamcount.WithSeed(streamcount.WatchSeedAt(seed, wantV))))
			if err != nil {
				t.Fatal(err)
			}
			if *ev.Result != *ref {
				t.Errorf("event at version %d: %+v != standalone %+v", wantV, *ev.Result, *ref)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("no event %d", i)
		}
	}
}

// TestWatchRejectsStaticStream: standing queries need an appendable lane.
func TestWatchRejectsStaticStream(t *testing.T) {
	_, st := queryWorkload(t)
	e := streamcount.NewEngine(st)
	defer e.Close()
	p, _ := streamcount.PatternByName("triangle")
	if _, err := streamcount.Watch(context.Background(), e, "", streamcount.CountQuery(p, streamcount.WithTrials(10))); !errors.Is(err, streamcount.ErrNotAppendable) {
		t.Errorf("watch on static stream: %v, want ErrNotAppendable", err)
	}
	if _, err := e.WatchQuery(context.Background(), "ghost", streamcount.CountQuery(p, streamcount.WithTrials(10))); !errors.Is(err, streamcount.ErrUnknownStream) {
		t.Errorf("watch on unknown stream: %v, want ErrUnknownStream", err)
	}
}

// TestSubscriptionTeardownNoGoroutineLeaks closes subscriptions all three
// ways under -race and asserts the goroutine count returns to its baseline
// — the facade's "clean teardown" guarantee.
func TestSubscriptionTeardownNoGoroutineLeaks(t *testing.T) {
	ups := watchUpdates(t)
	p, _ := streamcount.PatternByName("triangle")
	q := streamcount.CountQuery(p, streamcount.WithTrials(400), streamcount.WithSeed(3))

	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		// Close() mid-stream.
		e, _ := watchEngine(t)
		sub, err := streamcount.Watch(context.Background(), e, "", q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Append("", ups[:200]); err != nil {
			t.Fatal(err)
		}
		if err := sub.Close(); err != nil {
			t.Fatal(err)
		}
		if err := sub.Err(); !errors.Is(err, streamcount.ErrWatchClosed) {
			t.Errorf("Close terminal error = %v, want ErrWatchClosed", err)
		}

		// ctx cancel: the terminal error is delivered as the final event and
		// from Err, wrapping ErrCanceled.
		ctx, cancel := context.WithCancel(context.Background())
		sub2, err := streamcount.Watch(ctx, e, "", q)
		if err != nil {
			t.Fatal(err)
		}
		cancel()
		sawTerminal := false
		for ev := range sub2.Events() {
			if ev.Err != nil {
				sawTerminal = true
				if !errors.Is(ev.Err, streamcount.ErrCanceled) {
					t.Errorf("terminal event error = %v, want ErrCanceled", ev.Err)
				}
			}
		}
		if !sawTerminal {
			t.Error("cancellation delivered no terminal event")
		}
		if err := sub2.Err(); !errors.Is(err, streamcount.ErrCanceled) {
			t.Errorf("cancel terminal error = %v, want ErrCanceled", err)
		}

		// Engine.Close: ends the event stream with ErrEngineClosed.
		sub3, err := streamcount.Watch(context.Background(), e, "", q)
		if err != nil {
			t.Fatal(err)
		}
		e.Close()
		for range sub3.Events() {
		}
		if err := sub3.Err(); !errors.Is(err, streamcount.ErrEngineClosed) {
			t.Errorf("engine-close terminal error = %v, want ErrEngineClosed", err)
		}
		sub2.Close()
		sub3.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestEngineSubmitErrorPaths pins the facade's error contract for SubmitOn
// and DoOn: unknown streams, closed engines and canceled contexts all
// surface as the documented sentinels through both entry points.
func TestEngineSubmitErrorPaths(t *testing.T) {
	_, st := queryWorkload(t)
	p, _ := streamcount.PatternByName("triangle")
	q := streamcount.CountQuery(p, streamcount.WithTrials(500), streamcount.WithSeed(1))

	t.Run("unknown stream", func(t *testing.T) {
		e := streamcount.NewEngine(st)
		defer e.Close()
		if _, err := e.SubmitOn(context.Background(), "ghost", q); !errors.Is(err, streamcount.ErrUnknownStream) {
			t.Errorf("SubmitOn: %v, want ErrUnknownStream", err)
		}
		if _, err := streamcount.DoOn(context.Background(), e, "ghost", q); !errors.Is(err, streamcount.ErrUnknownStream) {
			t.Errorf("DoOn: %v, want ErrUnknownStream", err)
		}
	})

	t.Run("closed engine", func(t *testing.T) {
		e := streamcount.NewEngine(st)
		e.Close()
		if _, err := e.Submit(context.Background(), q); !errors.Is(err, streamcount.ErrEngineClosed) {
			t.Errorf("Submit: %v, want ErrEngineClosed", err)
		}
		if _, err := streamcount.Do(context.Background(), e, q); !errors.Is(err, streamcount.ErrEngineClosed) {
			t.Errorf("Do: %v, want ErrEngineClosed", err)
		}
	})

	t.Run("canceled context", func(t *testing.T) {
		e := streamcount.NewEngine(st)
		defer e.Close()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := streamcount.DoOn(ctx, e, "", q)
		if !errors.Is(err, streamcount.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Errorf("DoOn canceled: %v, want ErrCanceled wrapping context.Canceled", err)
		}
		// The engine stays serviceable and the rerun is bit-identical to a
		// run that never saw a cancellation.
		want, err := streamcount.Run(context.Background(), st, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := streamcount.Do(context.Background(), e, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
			t.Errorf("post-cancel rerun %v != standalone %v", got.Value, want.Value)
		}
	})

	t.Run("bad query surfaces before submission", func(t *testing.T) {
		e := streamcount.NewEngine(st)
		defer e.Close()
		if _, err := streamcount.Do(context.Background(), e, streamcount.CountQuery(nil)); !errors.Is(err, streamcount.ErrBadPattern) {
			t.Errorf("nil pattern: %v, want ErrBadPattern", err)
		}
	})
}
