package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"streamcount"
	"streamcount/internal/cluster"
	"streamcount/internal/wire"
)

// maxRouteHops bounds how many times one logical call chases wrong_node
// redirects before giving up. Routing converges in one hop when the cached
// map is merely stale; a second hop covers a transfer racing the retry. A
// loop longer than that means the cluster's maps disagree persistently,
// which is an operator problem a client cannot retry away.
const maxRouteHops = 3

// Cluster is a routing client for a sharded streamcountd deployment. It
// implements the same streamcount.Querier and streamcount.Watcher
// interfaces as Client and *streamcount.Engine, but fetches the cluster
// map (GET /v1/cluster) from its seed nodes, caches it, and sends every
// stream-scoped call — appends, queries, stats, watches — directly to the
// stream's owning node. When a node answers with a wrong_node redirect
// (HTTP 421, e.g. after a transfer the cached map predates), Cluster
// re-routes the identical request to the advertised owner and refreshes
// its map, composing with each per-node Client's retry policy: an append
// keeps its Idempotency-Key across hops, so a re-routed retry is applied
// exactly once, and a watch cut by a transfer reconnects to the new owner
// and resumes after the last delivered version, keeping the transcript
// gap- and duplicate-free.
//
// Cluster is safe for concurrent use.
type Cluster struct {
	opts  []Option
	seeds []string // normalized base URLs, in the caller's order

	mu      sync.Mutex
	m       *cluster.Map       // newest adopted map; nil until first fetch
	clients map[string]*Client // by normalized base URL
}

// NewCluster returns a routing client seeded with one or more node
// addresses (any subset of the cluster; the map fetched from them names
// the rest). Options apply to every per-node client Cluster creates.
func NewCluster(seeds []string, opts ...Option) (*Cluster, error) {
	if len(seeds) == 0 {
		return nil, errors.New("client: cluster needs at least one seed address")
	}
	cl := &Cluster{opts: opts, clients: make(map[string]*Client)}
	for _, s := range seeds {
		c, err := cl.clientFor(s)
		if err != nil {
			return nil, err
		}
		cl.seeds = append(cl.seeds, c.base)
	}
	return cl, nil
}

// normalizeAddr completes a bare host:port (the form cluster maps carry)
// into the http base URL Client requires.
func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		return "http://" + addr
	}
	return addr
}

// clientFor returns the cached per-node client for addr, creating it on
// first use.
func (cl *Cluster) clientFor(addr string) (*Client, error) {
	base := strings.TrimRight(normalizeAddr(addr), "/")
	cl.mu.Lock()
	c, ok := cl.clients[base]
	cl.mu.Unlock()
	if ok {
		return c, nil
	}
	c, err := New(base, cl.opts...)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	if prior, ok := cl.clients[c.base]; ok {
		c = prior // lost a benign race; keep one client per node
	} else {
		cl.clients[c.base] = c
	}
	cl.mu.Unlock()
	return c, nil
}

// adopt resolves a fetched wire map and installs it if it is newer than
// the cached one (max version wins, same monotone rule the nodes use).
func (cl *Cluster) adopt(w wire.ClusterMap) (*cluster.Map, error) {
	m, err := cluster.FromWire(w)
	if err != nil {
		return nil, fmt.Errorf("client: bad cluster map: %w", err)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.m == nil || m.Version > cl.m.Version {
		cl.m = m
	}
	return cl.m, nil
}

// refreshFrom fetches one node's current map and adopts it.
func (cl *Cluster) refreshFrom(ctx context.Context, c *Client) (*cluster.Map, error) {
	var w wire.ClusterMap
	if err := c.doJSON(ctx, http.MethodGet, "/v1/cluster", nil, &w); err != nil {
		return nil, err
	}
	return cl.adopt(w)
}

// ensureMap returns the cached map, fetching it from the seeds (first one
// that answers wins) on first use.
func (cl *Cluster) ensureMap(ctx context.Context) (*cluster.Map, error) {
	cl.mu.Lock()
	m := cl.m
	cl.mu.Unlock()
	if m != nil {
		return m, nil
	}
	var lastErr error
	for _, seed := range cl.seeds {
		c, err := cl.clientFor(seed)
		if err != nil {
			lastErr = err
			continue
		}
		if m, err = cl.refreshFrom(ctx, c); err == nil {
			return m, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: no seed served a cluster map: %w", lastErr)
}

// clearMap drops the cached cluster map, forcing the next resolution to
// refetch from the seeds. Routing uses it after a second consecutive
// wrong_node rejection for the same stream: a redirect loop means the maps
// the rejecting nodes advertise are themselves stale, and adopting them
// (max-version-wins keeps the newest the client has SEEN, not the newest
// that EXISTS) can never escape the loop — only a fresh seed fetch can.
func (cl *Cluster) clearMap() {
	cl.mu.Lock()
	cl.m = nil
	cl.mu.Unlock()
}

// ClusterMap returns the current cluster map in its wire form, fetching it
// on first use. The map is the one routing decisions use, not necessarily
// the newest any node holds.
func (cl *Cluster) ClusterMap(ctx context.Context) (wire.ClusterMap, error) {
	m, err := cl.ensureMap(ctx)
	if err != nil {
		return wire.ClusterMap{}, err
	}
	return m.ToWire(), nil
}

// ownerClient resolves the named stream's owner under the cached map. The
// default stream ("") is node-local on every node and routes to the first
// seed.
func (cl *Cluster) ownerClient(ctx context.Context, stream string) (*Client, error) {
	if stream == "" {
		return cl.clientFor(cl.seeds[0])
	}
	m, err := cl.ensureMap(ctx)
	if err != nil {
		return nil, err
	}
	return cl.clientFor(m.Owner(stream).Addr)
}

// wrongNode extracts the redirect from a wrong_node rejection, or reports
// that err is something else.
func wrongNode(err error) (redirect wire.Error, ok bool) {
	var se *apiStatusError
	if errors.As(err, &se) && se.status == http.StatusMisdirectedRequest {
		return se.api, true
	}
	return wire.Error{}, false
}

// routed runs one stream-scoped call against the stream's owner, chasing
// wrong_node redirects: each 421 names the real owner, so the next hop
// goes straight there (and the rejecting node's map — which already knows
// the new ownership — is adopted best-effort for future calls). Every
// other error, including each per-node client's exhausted retries, returns
// as-is.
func (cl *Cluster) routed(ctx context.Context, stream string, f func(*Client) error) error {
	var nextAddr string
	var err error
	rejections := 0
	for hop := 0; hop < maxRouteHops; hop++ {
		var c *Client
		if nextAddr != "" {
			c, err = cl.clientFor(nextAddr)
		} else {
			c, err = cl.ownerClient(ctx, stream)
		}
		if err != nil {
			return err
		}
		if err = f(c); err == nil {
			return nil
		}
		redirect, isWrongNode := wrongNode(err)
		if !isWrongNode {
			return err
		}
		rejections++
		if rejections >= 2 {
			// Two consecutive wrong_node rejections for one stream: the
			// redirects (and the rejecting nodes' maps) are leading in a
			// circle. Drop the cached map and re-resolve from the seeds,
			// which may hold a genuinely newer map than any node visited.
			cl.clearMap()
			m, merr := cl.ensureMap(ctx)
			if merr != nil {
				return err
			}
			nextAddr = m.Owner(stream).Addr
			continue
		}
		nextAddr = redirect.OwnerAddr
		if m, rerr := cl.refreshFrom(ctx, c); rerr == nil && nextAddr == "" {
			nextAddr = m.Owner(stream).Addr
		}
		if nextAddr == "" {
			return err
		}
	}
	return err
}

// CreateStream creates an appendable stream on its owning node.
func (cl *Cluster) CreateStream(ctx context.Context, name string, n int64) error {
	return cl.routed(ctx, name, func(c *Client) error {
		return c.CreateStream(ctx, name, n)
	})
}

// Streams returns every stream registered across the cluster: the union of
// each member's listing (each node lists only the streams it owns),
// deduplicated and sorted.
func (cl *Cluster) Streams(ctx context.Context) ([]string, error) {
	m, err := cl.ensureMap(ctx)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, n := range m.Nodes {
		c, err := cl.clientFor(n.Addr)
		if err != nil {
			return nil, err
		}
		names, err := c.Streams(ctx)
		if err != nil {
			return nil, fmt.Errorf("client: listing streams on node %q: %w", n.ID, err)
		}
		for _, name := range names {
			seen[name] = true
		}
	}
	all := make([]string, 0, len(seen))
	for name := range seen {
		all = append(all, name)
	}
	sort.Strings(all)
	return all, nil
}

// Append publishes updates to the named stream's owner — the same contract
// as Client.Append, including degraded-durability signaling. One
// Idempotency-Key covers the logical append across every retry and every
// wrong_node hop, so a batch the old owner applied just before the
// ownership flip is recognized as a replay by the new owner (whose receipt
// journal shipped with the stream) instead of being applied twice.
func (cl *Cluster) Append(ctx context.Context, stream string, ups []streamcount.Update) (int64, error) {
	key := newIdempotencyKey()
	var version int64
	err := cl.routed(ctx, stream, func(c *Client) error {
		var e error
		version, e = c.appendKeyed(ctx, stream, key, ups)
		return e
	})
	return version, err
}

// StreamVersion returns the named stream's current version from its owner.
func (cl *Cluster) StreamVersion(ctx context.Context, stream string) (int64, error) {
	var version int64
	err := cl.routed(ctx, stream, func(c *Client) error {
		var e error
		version, e = c.StreamVersion(ctx, stream)
		return e
	})
	return version, err
}

// Submit runs q on the default stream, which is node-local; it executes on
// the first seed. It implements streamcount.Querier.
func (cl *Cluster) Submit(ctx context.Context, q streamcount.Query) (streamcount.Outcome, error) {
	return cl.SubmitOn(ctx, "", q)
}

// SubmitOn runs q against the named stream's owner. The Outcome is
// bit-identical to a local engine's at the same (seed, stream version) —
// routing never touches the query or its result.
func (cl *Cluster) SubmitOn(ctx context.Context, stream string, q streamcount.Query) (streamcount.Outcome, error) {
	out := streamcount.Outcome{Kind: q.Kind()}
	err := cl.routed(ctx, stream, func(c *Client) error {
		var e error
		out, e = c.SubmitOn(ctx, stream, q)
		return e
	})
	return out, err
}

// openRoutedWatch dials a watch against the stream's current owner,
// chasing wrong_node redirects the same way routed does. Each hop's dial
// goes through the per-node client's openWatch, which already waits out
// retryable conditions — in particular a stream mid-transfer (503
// transferring): either the transfer aborts and the dial succeeds here, or
// it completes and the next attempt is redirected to the new owner.
func (cl *Cluster) openRoutedWatch(ctx context.Context, stream string, req wire.WatchRequest) (*Client, *watchConn, error) {
	var nextAddr string
	var err error
	rejections := 0
	for hop := 0; hop < maxRouteHops; hop++ {
		var c *Client
		if nextAddr != "" {
			c, err = cl.clientFor(nextAddr)
		} else {
			c, err = cl.ownerClient(ctx, stream)
		}
		if err != nil {
			return nil, nil, err
		}
		var conn *watchConn
		if conn, err = c.openWatch(ctx, req); err == nil {
			return c, conn, nil
		}
		redirect, isWrongNode := wrongNode(err)
		if !isWrongNode {
			return nil, nil, err
		}
		rejections++
		if rejections >= 2 {
			// See routed: a second consecutive wrong_node means the cached
			// map and the rejecting nodes' maps are all stale. Refetch from
			// the seeds instead of chasing the circle.
			cl.clearMap()
			m, merr := cl.ensureMap(ctx)
			if merr != nil {
				return nil, nil, err
			}
			nextAddr = m.Owner(stream).Addr
			continue
		}
		nextAddr = redirect.OwnerAddr
		if m, rerr := cl.refreshFrom(ctx, c); rerr == nil && nextAddr == "" {
			nextAddr = m.Owner(stream).Addr
		}
		if nextAddr == "" {
			return nil, nil, err
		}
	}
	return nil, nil, err
}

// WatchQuery registers q as a standing query on the named stream's owner,
// implementing streamcount.Watcher with the same self-healing contract as
// Client.WatchQuery — plus re-routing: when the owning node ends the watch
// because the stream is shipping away (terminal code "transferring"), or
// drops it any other retryable way, the subscription reconnects to
// whichever node owns the stream by then and resumes after the last
// delivered version. The combined transcript across a live transfer is
// identical to an uninterrupted watch's.
func (cl *Cluster) WatchQuery(ctx context.Context, stream string, q streamcount.Query, opts ...streamcount.WatchOption) (*streamcount.Subscription[streamcount.Outcome], error) {
	cfg := streamcount.NewWatchConfig(opts...)
	wq, err := encodeQuery(stream, q)
	if err != nil {
		return nil, err
	}
	req := wire.WatchRequest{Query: wq, Policy: wire.PolicyLatest}
	if cfg.EveryVersion {
		req.Policy = wire.PolicyEvery
	}
	if cfg.AfterVersion > 0 {
		req.After = cfg.AfterVersion
	}

	// As with Client.WatchQuery, the first connection is synchronous so
	// misconfigured watches fail the call itself.
	c, conn, err := cl.openRoutedWatch(ctx, stream, req)
	if err != nil {
		return nil, err
	}

	sub := streamcount.NewSubscription(cfg.Buffer, func(sctx context.Context, emit func(streamcount.WatchEvent[streamcount.Outcome]) bool) error {
		last := req.After
		var gen int64
		for {
			stop := context.AfterFunc(sctx, conn.cancel)
			done, err := c.consumeWatch(ctx, sctx, conn.r, emit, &last, &gen)
			stop()
			conn.close()
			if done {
				return err
			}
			// Retryable interruption — including a transfer's terminal
			// event: re-resolve the owner and resume past the last
			// delivered version.
			rreq := req
			rreq.After = last
			if c, conn, err = cl.openRoutedWatch(ctx, stream, rreq); err != nil {
				if sctx.Err() != nil {
					return streamcount.ErrWatchClosed
				}
				return fmt.Errorf("client: watch could not reconnect: %w", err)
			}
		}
	})
	return sub, nil
}

// Transfer asks the stream's current owner to ship the stream to the
// target node and flip ownership — the client face of POST
// /v1/cluster/transfer. On success the cached map is refreshed so
// subsequent calls route to the new owner immediately.
func (cl *Cluster) Transfer(ctx context.Context, stream, target string) (wire.TransferResponse, error) {
	var resp wire.TransferResponse
	err := cl.routed(ctx, stream, func(c *Client) error {
		return c.doJSON(ctx, http.MethodPost, "/v1/cluster/transfer",
			wire.TransferRequest{Stream: stream, Target: target}, &resp)
	})
	if err != nil {
		return wire.TransferResponse{}, err
	}
	if c, cerr := cl.ownerClient(ctx, stream); cerr == nil {
		_, _ = cl.refreshFrom(ctx, c)
	}
	return resp, nil
}

// Compile-time interface symmetry with Client and the local engine.
var (
	_ streamcount.Querier = (*Cluster)(nil)
	_ streamcount.Watcher = (*Cluster)(nil)
)
