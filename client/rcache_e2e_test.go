package client_test

// Result-cache determinism over the wire: the contract-suite leg runs twice
// against ONE cache-enabled server. The second pass must be bit-identical
// AND replay-free — every query is served memoized, so the stream's pass
// counter does not move and the cache's miss counter is flat. This is the
// end-to-end face of the DESIGN.md §13 contract: a hit is indistinguishable
// from a recomputation, except that the stream is never touched.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"streamcount"
	"streamcount/client"
	"streamcount/internal/server"
	"streamcount/internal/wire"
)

// streamPasses reads one stream's replay-pass counter off the raw stats
// endpoint (the Go client deliberately exposes only the version).
func streamPasses(t *testing.T, base, stream string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/streams/" + stream + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info wire.StreamInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info.Passes
}

// cacheStats reads the server's result-cache snapshot off /healthz.
func cacheStats(t *testing.T, base string) wire.ResultCacheStats {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h wire.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.ResultCache
}

// runCachedLeg runs the read-only contract queries plus an every-version
// watch against c and returns the transcript. Both legs see identical
// stream state — all ingestion happened before the first leg — so their
// transcripts must match line for line.
func runCachedLeg(t *testing.T, c *client.Client, ups []streamcount.Update) []string {
	t.Helper()
	ctx := context.Background()
	var log []string
	record := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }

	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}

	est, err := streamcount.DoOn(ctx, c, "s", streamcount.CountQuery(p,
		streamcount.WithTrials(600), streamcount.WithSeed(7)))
	if err != nil {
		t.Fatal(err)
	}
	record("count: %s", fpCount(est))

	est2, err := streamcount.DoOn(ctx, c, "s", streamcount.CountQuery(p,
		streamcount.WithEpsilon(0.8), streamcount.WithLowerBound(100), streamcount.WithSeed(8)))
	if err != nil {
		t.Fatal(err)
	}
	record("derived: %s", fpCount(est2))

	out, err := c.SubmitOn(ctx, "s", streamcount.DistinguishQuery(p, 50,
		streamcount.WithTrials(400), streamcount.WithSeed(9)))
	if err != nil {
		t.Fatal(err)
	}
	record("distinguish: kind=%s version=%d above=%v estimate{%s}",
		out.Kind, out.StreamVersion, out.Decision.Above, fpCount(out.Decision.Estimate))

	smp, err := streamcount.DoOn(ctx, c, "s", streamcount.SampleQuery(p,
		streamcount.WithTrials(2000), streamcount.WithSeed(10)))
	if err != nil {
		t.Fatal(err)
	}
	record("sample: found=%v vertices=%v edges=%v", smp.Found, smp.Copy.Vertices, smp.Copy.Edges)

	// Every-version watch from zero: both "w" batches predate the watch, so
	// the receipt-ring backfill republishes them and each leg observes the
	// same two versioned evaluations at the same derived seeds.
	sub, err := streamcount.Watch(ctx, c, "w", streamcount.CountQuery(p,
		streamcount.WithTrials(500), streamcount.WithSeed(11)), streamcount.WatchEveryVersion())
	if err != nil {
		t.Fatal(err)
	}
	half := int64(len(ups) / 2)
	for i, wantV := range []int64{half, int64(len(ups))} {
		select {
		case ev := <-sub.Events():
			if ev.Err != nil {
				t.Fatalf("watch event %d failed: %v", i, ev.Err)
			}
			if ev.StreamVersion != wantV {
				t.Errorf("watch event %d at version %d, want %d", i, ev.StreamVersion, wantV)
			}
			record("watch[%d]: version=%d %s", i, ev.StreamVersion, fpCount(ev.Result))
		case <-time.After(30 * time.Second):
			t.Fatalf("no watch event %d", i)
		}
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	return log
}

func TestResultCacheContractLegTwiceReplayFree(t *testing.T) {
	srv, err := server.New(server.Options{
		WatchHeartbeat: 50 * time.Millisecond,
		ResultCacheMB:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// All ingestion happens before either leg: "s" gets the full edge set,
	// "w" the same set in two batches (two watchable versions).
	const n, m = 60, 300
	ups := contractEdges(n, m)
	for _, name := range []string{"s", "w"} {
		if err := c.CreateStream(ctx, name, n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Append(ctx, "s", ups); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "w", ups[:m/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "w", ups[m/2:]); err != nil {
		t.Fatal(err)
	}

	first := runCachedLeg(t, c, ups)
	passesAfterFirst := streamPasses(t, ts.URL, "s")
	statsAfterFirst := cacheStats(t, ts.URL)
	if passesAfterFirst == 0 {
		t.Fatal("first leg replayed nothing; the suite is not exercising the stream")
	}

	second := runCachedLeg(t, c, ups)

	if len(first) != len(second) {
		t.Fatalf("leg transcripts differ in length: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("transcript line %d diverges between legs:\n  first:  %s\n  second: %s", i, first[i], second[i])
		}
	}

	// Replay-free: the second leg moved no pass counter and missed nothing.
	if p := streamPasses(t, ts.URL, "s"); p != passesAfterFirst {
		t.Errorf("second leg replayed the stream: passes %d -> %d", passesAfterFirst, p)
	}
	stats := cacheStats(t, ts.URL)
	if stats.Misses != statsAfterFirst.Misses {
		t.Errorf("second leg missed the cache: misses %d -> %d", statsAfterFirst.Misses, stats.Misses)
	}
	// Four queries plus two watch evaluations served memoized.
	if gained := stats.Hits - statsAfterFirst.Hits; gained < 6 {
		t.Errorf("second leg hit the cache %d times, want >= 6", gained)
	}
	if stats.ResidentBytes <= 0 || stats.Entries <= 0 {
		t.Errorf("cache reports no residency after two legs: %+v", stats)
	}
}
