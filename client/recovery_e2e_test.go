package client_test

// The durability acceptance test: a real daemon process is SIGKILLed
// mid-ingestion and restarted on the same segment directory while a
// self-healing client keeps appending and watching. After each restart the
// recovered version must equal the last acknowledged append receipt,
// pinned queries must reproduce their pre-crash results bit for bit, and a
// watch spanning both restarts must deliver the exact event transcript of
// an uninterrupted local engine over the same updates.
//
// The daemon runs as a helper process (this test binary re-executed with
// STREAMCOUNT_E2E_DAEMON=1), so the kill is a genuine process death: no
// deferred cleanup, no flushes — only what Append had already made durable
// survives.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"streamcount"
	"streamcount/client"
	"streamcount/internal/server"
)

// TestDaemonHelper is not a test: it is the daemon half of the kill-restart
// e2e, run in a child process.
func TestDaemonHelper(t *testing.T) {
	if os.Getenv("STREAMCOUNT_E2E_DAEMON") != "1" {
		t.Skip("helper process for TestKillRestartE2E")
	}
	addr := os.Getenv("STREAMCOUNT_E2E_ADDR")
	dir := os.Getenv("STREAMCOUNT_E2E_DIR")
	srv, err := server.New(server.Options{
		SegmentDir:     dir,
		SegmentSize:    16,
		Window:         5 * time.Millisecond,
		WatchHeartbeat: 50 * time.Millisecond,
	})
	if err != nil {
		fmt.Printf("DAEMON_ERROR %v\n", err)
		os.Exit(1)
	}
	// The previous incarnation's socket may linger briefly after SIGKILL.
	var ln net.Listener
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		fmt.Printf("DAEMON_ERROR %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("DAEMON_LISTENING %s\n", ln.Addr())
	_ = http.Serve(ln, srv) // runs until SIGKILL
}

// daemon manages one helper-process incarnation.
type daemon struct {
	cmd *exec.Cmd
}

func startDaemon(t *testing.T, addr, dir string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDaemonHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"STREAMCOUNT_E2E_DAEMON=1",
		"STREAMCOUNT_E2E_ADDR="+addr,
		"STREAMCOUNT_E2E_DIR="+dir,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	ready := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "DAEMON_LISTENING ") || strings.HasPrefix(line, "DAEMON_ERROR ") {
				ready <- line
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ready <- "DAEMON_ERROR stdout closed before listening"
	}()
	select {
	case line := <-ready:
		if !strings.HasPrefix(line, "DAEMON_LISTENING ") {
			cmd.Process.Kill()
			t.Fatalf("daemon failed to start: %s", line)
		}
	case <-deadline:
		cmd.Process.Kill()
		t.Fatal("daemon did not report listening within 30s")
	}
	return &daemon{cmd: cmd}
}

// kill SIGKILLs the daemon — the machine-crash stand-in. No shutdown hook
// in the server runs.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d.cmd.Wait() // reap; the kill error code is expected
}

func TestKillRestartE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	dir := t.TempDir()

	// Pick a free port and release it for the daemon to claim.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	d := startDaemon(t, addr, dir)
	alive := true
	defer func() {
		if alive {
			d.kill(t)
		}
	}()

	// A patient retry policy: outage windows here are daemon restarts
	// (~1-2s), and short max delays keep the recovery detection snappy.
	c, err := client.New("http://"+addr, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 40,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Jitter:      0.2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const n, m = 60, 200
	if err := c.CreateStream(ctx, "live", n); err != nil {
		t.Fatal(err)
	}

	// The uninterrupted control: a local engine fed the identical updates.
	// Its watch transcript is the ground truth the remote watch — which
	// will span two daemon crashes — must reproduce exactly.
	mirror, err := streamcount.NewAppendableStream(n, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mdef, err := streamcount.NewAppendableStream(8, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := streamcount.NewEngine(mdef)
	defer eng.Close()
	if err := eng.RegisterStream("live", mirror); err != nil {
		t.Fatal(err)
	}

	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	watchQ := streamcount.CountQuery(p, streamcount.WithTrials(300), streamcount.WithSeed(11))
	remoteSub, err := streamcount.Watch(ctx, c, "live", watchQ, streamcount.WatchEveryVersion())
	if err != nil {
		t.Fatal(err)
	}
	defer remoteSub.Close()
	localSub, err := streamcount.Watch(ctx, eng, "live", watchQ, streamcount.WatchEveryVersion())
	if err != nil {
		t.Fatal(err)
	}
	defer localSub.Close()

	ups := contractEdges(n, m)
	const batch = 40
	var remoteLog, localLog []string
	nextEvent := func(sub *streamcount.Subscription[*streamcount.CountResult], log *[]string, wantV int64, side string) {
		t.Helper()
		select {
		case ev := <-sub.Events():
			if ev.Err != nil {
				t.Fatalf("%s watch failed at version %d: %v", side, wantV, ev.Err)
			}
			if ev.StreamVersion != wantV {
				t.Fatalf("%s watch event at version %d, want %d", side, ev.StreamVersion, wantV)
			}
			*log = append(*log, fmt.Sprintf("gen=%d version=%d %s", ev.Generation, ev.StreamVersion, fpCount(ev.Result)))
		case <-time.After(60 * time.Second):
			t.Fatalf("%s watch: no event for version %d", side, wantV)
		}
	}
	ingest := func(i int) int64 {
		t.Helper()
		chunk := ups[i*batch : (i+1)*batch]
		v, err := c.Append(ctx, "live", chunk)
		if err != nil {
			t.Fatalf("append batch %d: %v", i, err)
		}
		lv, err := eng.Append("live", chunk)
		if err != nil {
			t.Fatalf("mirror append batch %d: %v", i, err)
		}
		if v != lv {
			t.Fatalf("batch %d: remote version %d, local %d", i, v, lv)
		}
		nextEvent(remoteSub, &remoteLog, v, "remote")
		nextEvent(localSub, &localLog, v, "local")
		return v
	}

	// Phase 1: three batches, fully acknowledged and observed by both
	// watches, then a pinned query whose result the restarted daemon must
	// reproduce.
	var acked int64
	for i := 0; i < 3; i++ {
		acked = ingest(i)
	}
	pinnedQ := streamcount.CountQuery(p, streamcount.WithTrials(400), streamcount.WithSeed(99))
	before, err := c.SubmitOn(ctx, "live", pinnedQ)
	if err != nil {
		t.Fatal(err)
	}
	if before.StreamVersion != acked {
		t.Fatalf("pinned query at version %d, want %d", before.StreamVersion, acked)
	}

	// Crash 1: SIGKILL, restart on the same directory. Everything
	// acknowledged must be back, bit for bit.
	d.kill(t)
	d = startDaemon(t, addr, dir)

	v, err := c.StreamVersion(ctx, "live")
	if err != nil {
		t.Fatalf("version after restart: %v", err)
	}
	if v != acked {
		t.Fatalf("recovered version %d, want last acked %d", v, acked)
	}
	after, err := c.SubmitOn(ctx, "live", pinnedQ)
	if err != nil {
		t.Fatalf("pinned query after restart: %v", err)
	}
	if after.StreamVersion != before.StreamVersion ||
		fpCount(after.Count) != fpCount(before.Count) {
		t.Fatalf("pinned query diverged across restart:\n before %s @%d\n after  %s @%d",
			fpCount(before.Count), before.StreamVersion, fpCount(after.Count), after.StreamVersion)
	}

	// Crash 2: kill again and issue the next append while the daemon is
	// down — the client must ride the outage out and land the batch exactly
	// once on the restarted daemon.
	d.kill(t)
	appended := make(chan error, 1)
	go func() {
		chunk := ups[3*batch : 4*batch]
		v, err := c.Append(ctx, "live", chunk)
		if err == nil && v != int64(4*batch) {
			err = fmt.Errorf("mid-outage append acked version %d, want %d", v, 4*batch)
		}
		appended <- err
	}()
	time.Sleep(300 * time.Millisecond) // let the append start failing
	d = startDaemon(t, addr, dir)
	if err := <-appended; err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Append("live", ups[3*batch:4*batch]); err != nil {
		t.Fatal(err)
	}
	nextEvent(remoteSub, &remoteLog, int64(4*batch), "remote")
	nextEvent(localSub, &localLog, int64(4*batch), "local")

	// Phase 3: a final batch after full recovery.
	ingest(4)

	// The remote transcript — spanning two daemon crashes — must be
	// line-identical to the uninterrupted local engine's: same versions,
	// same generations, same result bits. That is the self-healing watch
	// contract: reconnection is invisible in the data.
	if len(remoteLog) != len(localLog) {
		t.Fatalf("transcript lengths differ: remote %d local %d\nremote %v\nlocal %v",
			len(remoteLog), len(localLog), remoteLog, localLog)
	}
	for i := range remoteLog {
		if remoteLog[i] != localLog[i] {
			t.Errorf("watch transcript line %d diverges across restarts:\n remote %s\n local  %s",
				i, remoteLog[i], localLog[i])
		}
	}
}
