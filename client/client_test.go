package client_test

import (
	"context"
	"errors"
	"testing"

	"streamcount"
	"streamcount/client"
)

func TestNewRejectsBadBaseURLs(t *testing.T) {
	for _, bad := range []string{"://nope", "ftp://host", ""} {
		if _, err := client.New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	if _, err := client.New("http://localhost:8470/"); err != nil {
		t.Errorf("trailing slash rejected: %v", err)
	}
}

func TestNonWireQueriesFailBeforeAnyRequest(t *testing.T) {
	// No server is listening on the base URL: an encodability failure must
	// surface before any connection is attempted. Retries are disabled so
	// the dead-endpoint control check below fails fast.
	c, err := client.New("http://127.0.0.1:1",
		client.WithRetry(client.RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Custom (non-catalog) patterns cannot be named on the wire.
	custom, err := streamcount.NewPattern("bowtie-variant", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, streamcount.CountQuery(custom, streamcount.WithTrials(10))); !errors.Is(err, streamcount.ErrBadPattern) {
		t.Errorf("custom pattern: %v, want ErrBadPattern", err)
	}

	// A custom pattern reusing a catalog name but a different structure must
	// not silently encode as the catalog pattern.
	impostor, err := streamcount.NewPattern("triangle", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, streamcount.CountQuery(impostor, streamcount.WithTrials(10))); !errors.Is(err, streamcount.ErrBadPattern) {
		t.Errorf("impostor pattern: %v, want ErrBadPattern", err)
	}

	// A structurally identical pattern under a catalog name is encodable:
	// the failure here must be the dead endpoint, not encoding.
	p, _ := streamcount.PatternByName("triangle")
	if _, err := c.Submit(ctx, streamcount.CountQuery(p, streamcount.WithTrials(10))); errors.Is(err, streamcount.ErrBadPattern) {
		t.Errorf("catalog pattern failed to encode: %v", err)
	}
}
