// Package client is the Go SDK for streamcountd, the streamcount network
// daemon. Its Client implements the same streamcount.Querier and
// streamcount.Watcher interfaces as the in-process *streamcount.Engine, so
// query code — including the generic streamcount.Do / streamcount.Watch
// entry points and whole watch-loops — runs unchanged against a local
// engine or a remote daemon:
//
//	c, _ := client.New("http://localhost:8470")
//	p, _ := streamcount.PatternByName("triangle")
//	est, err := streamcount.Do(ctx, c, streamcount.CountQuery(p,
//	    streamcount.WithTrials(100000), streamcount.WithSeed(7)))
//
// Results are bit-identical to the same query against a local engine over
// the same stream prefix: the daemon executes the identical code at the
// identical (seed, stream_version), and the JSON float encoding
// round-trips exactly.
//
// Standing queries arrive over Server-Sent Events and surface as the same
// streamcount.Subscription the local engine returns:
//
//	sub, _ := streamcount.Watch(ctx, c, "live", streamcount.CountQuery(p,
//	    streamcount.WithTrials(50000), streamcount.WithSeed(7)))
//	for ev := range sub.Events() { ... }
//
// Errors carry the facade's typed sentinels (streamcount.ErrUnknownStream,
// ErrBadConfig, ...) rehydrated from the wire, so errors.Is dispatch works
// across the network boundary.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"streamcount"
	"streamcount/internal/wire"
)

// Client is a streamcountd API client. It is safe for concurrent use.
//
// The client is self-healing by default: retryable failures — transport
// errors, 429/502/503/504, the daemon's "recovering" window after a restart
// — are retried with exponential backoff and jitter (DefaultRetryPolicy),
// honoring Retry-After. Append attaches an Idempotency-Key so retries can
// never double-ingest a batch, and dropped watch connections reconnect and
// resume from the last delivered stream version, keeping the event
// transcript gap-free. Configure or disable with WithRetry.
type Client struct {
	base   string
	http   *http.Client
	retry  RetryPolicy
	tenant string
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). Note that a client-wide Timeout would also
// kill long-lived watch connections; prefer per-request contexts.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithTenant stamps every request (watch connections included) with the
// given tenant identity via the X-Tenant header, so the daemon's per-tenant
// admission control — token-bucket quotas and priority lanes — attributes
// the client's work to that tenant. Empty (the default) is the daemon's
// default tenant. A quota rejection surfaces as a 429 with
// streamcount.ErrQuotaExhausted, which the retry policy waits out under the
// server's Retry-After.
func WithTenant(name string) Option {
	return func(c *Client) { c.tenant = name }
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8470").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http(s)", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), http: http.DefaultClient, retry: DefaultRetryPolicy()}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// ErrWrongNode reports that the addressed cluster node does not own the
// requested stream (HTTP 421 with code "wrong_node"). The error's wire
// body names the owner; Cluster re-routes there automatically, so plain
// Client users only see this when talking to a single node of a sharded
// deployment directly.
var ErrWrongNode = errors.New("wrong node for stream")

// statusError builds the typed error for one non-2xx response: status and
// Retry-After for the retry loop, the decoded wire body for the routing
// layer, and the rehydrated sentinel chain for callers.
func statusError(status int, h http.Header, body []byte) *apiStatusError {
	var we wire.Error
	_ = json.Unmarshal(body, &we)
	return &apiStatusError{
		status:     status,
		retryAfter: parseRetryAfter(h),
		api:        we,
		err:        apiError(status, we, body),
	}
}

// apiError reconstructs a typed error from a non-2xx response. The wire
// error code is authoritative; the HTTP status is the fallback for bodies
// without one (proxies, old servers).
func apiError(status int, we wire.Error, body []byte) error {
	msg := strings.TrimSpace(string(body))
	if we.Error != "" {
		msg = we.Error
	}
	sentinel := codeSentinel(we.Code)
	if sentinel == nil && we.Code == wire.CodeWrongNode {
		sentinel = ErrWrongNode
	}
	if sentinel == nil && we.Code == "" {
		// No code at all (plain validation failures, proxies): fall back to
		// the status. A present-but-unrecognized code (e.g. watch_limit, or
		// one from a newer server) is deliberately left sentinel-less rather
		// than mislabeled.
		switch status {
		case http.StatusNotFound:
			sentinel = streamcount.ErrUnknownStream
		case http.StatusConflict:
			sentinel = streamcount.ErrNotAppendable
		case http.StatusBadRequest:
			sentinel = streamcount.ErrBadConfig
		case http.StatusServiceUnavailable:
			sentinel = streamcount.ErrEngineClosed
		}
	}
	if sentinel != nil {
		return fmt.Errorf("client: server %d: %s: %w", status, msg, sentinel)
	}
	return fmt.Errorf("client: server %d: %s", status, msg)
}

// codeSentinel maps a wire error code to the facade sentinel it names.
func codeSentinel(code string) error {
	switch code {
	case wire.CodeUnknownStream:
		return streamcount.ErrUnknownStream
	case wire.CodeNotAppendable:
		return streamcount.ErrNotAppendable
	case wire.CodeBadPattern:
		return streamcount.ErrBadPattern
	case wire.CodeBadConfig:
		return streamcount.ErrBadConfig
	case wire.CodeCanceled:
		return streamcount.ErrCanceled
	case wire.CodeEngineClosed:
		return streamcount.ErrEngineClosed
	case wire.CodeWatchClosed, wire.CodeDraining:
		return streamcount.ErrWatchClosed
	case wire.CodeReceiptFailed:
		return streamcount.ErrReceiptFailed
	case wire.CodeQuotaExhausted:
		return streamcount.ErrQuotaExhausted
	default:
		return nil
	}
}

// doJSON performs a request with a JSON body (when in is non-nil), retrying
// retryable failures under the client's policy, and decodes a JSON response
// into out (when non-nil).
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	return c.doRetry(ctx, method, path, nil, in, out)
}

// doRetry is doJSON with extra headers: the body is marshaled once and every
// attempt sends the identical bytes (and headers — in particular the same
// Idempotency-Key), so a retry is a true replay.
func (c *Client) doRetry(ctx context.Context, method, path string, hdr http.Header, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	attempts := c.retry.attempts()
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, hdr, data, out)
		if err == nil {
			return nil
		}
		retry, serverDelay := retryDecision(err)
		if !retry || attempt+1 >= attempts || ctx.Err() != nil {
			return err
		}
		delay := c.retry.delay(attempt)
		if serverDelay > delay {
			delay = serverDelay
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return wrapTransport(ctx, ctx.Err())
		}
	}
}

// doOnce is a single request attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, hdr http.Header, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set("X-Tenant", c.tenant)
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return wrapTransport(ctx, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return wrapTransport(ctx, err)
	}
	if resp.StatusCode/100 != 2 {
		return statusError(resp.StatusCode, resp.Header, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: undecodable response: %w", err)
		}
	}
	return nil
}

// wrapTransport maps a transport-level failure: a canceled or expired
// context surfaces as the facade's ErrCanceled (wrapping the context error,
// so both errors.Is checks work), exactly as a local engine would report
// it.
func wrapTransport(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("client: %w: %w", streamcount.ErrCanceled, ctxErr)
	}
	return fmt.Errorf("client: %w", err)
}

// CreateStream creates an appendable stream on the daemon with vertices
// 0..n-1.
func (c *Client) CreateStream(ctx context.Context, name string, n int64) error {
	return c.doJSON(ctx, http.MethodPost, "/v1/streams", wire.CreateStreamRequest{Name: name, N: n}, nil)
}

// Streams returns the daemon's registered stream names.
func (c *Client) Streams(ctx context.Context) ([]string, error) {
	var list wire.StreamsList
	if err := c.doJSON(ctx, http.MethodGet, "/v1/streams", nil, &list); err != nil {
		return nil, err
	}
	return list.Streams, nil
}

// Append publishes updates to the named stream's append-only log and
// returns the new stream version — the same contract as
// streamcount.Engine.Append, degraded-durability signaling included: when
// the server acknowledges the batch as published but not (fully) durable (a
// failing disk under its segment directory), Append returns the new version
// alongside an error wrapping streamcount.ErrEvictFailed, exactly as a
// local engine would. Callers that need durability must treat that as "at
// risk until the disk heals"; callers that only need publication can
// errors.Is-filter it.
//
// Every call carries a fresh Idempotency-Key that is reused across its
// retries, so a retried append — including one whose first attempt was
// durably applied by a server that died before the response arrived — is
// never applied twice: the server replays the original receipt, which
// durable streams journal with the log and rebuild on recovery.
func (c *Client) Append(ctx context.Context, stream string, ups []streamcount.Update) (int64, error) {
	return c.appendKeyed(ctx, stream, newIdempotencyKey(), ups)
}

// appendKeyed is Append with a caller-supplied Idempotency-Key. Cluster
// routes through it so one logical append keeps one key across every hop
// of a wrong_node redirect as well as across retries — a batch applied by
// the old owner just before the ownership flip is recognized as a replay
// by the new owner, whose receipt journal shipped with the segments.
func (c *Client) appendKeyed(ctx context.Context, stream, key string, ups []streamcount.Update) (int64, error) {
	req := wire.AppendRequest{Updates: make([]wire.Update, len(ups))}
	for i, u := range ups {
		w := wire.Update{U: u.Edge.U, V: u.Edge.V}
		if u.Op == streamcount.Delete {
			w.Op = "-"
		}
		req.Updates[i] = w
	}
	hdr := http.Header{"Idempotency-Key": []string{key}}
	var resp wire.AppendResponse
	if err := c.doRetry(ctx, http.MethodPost, "/v1/streams/"+url.PathEscape(stream)+"/edges", hdr, req, &resp); err != nil {
		return 0, err
	}
	if resp.Warning != "" {
		// The batch is published (the version is real and must be returned),
		// but acknowledged durability is degraded until the server's disk
		// heals — surface it instead of reporting plain success.
		return resp.Version, fmt.Errorf("client: append published with degraded durability: %s: %w", resp.Warning, streamcount.ErrEvictFailed)
	}
	return resp.Version, nil
}

// StreamVersion returns the named stream's current version.
func (c *Client) StreamVersion(ctx context.Context, stream string) (int64, error) {
	var info wire.StreamInfo
	if err := c.doJSON(ctx, http.MethodGet, "/v1/streams/"+url.PathEscape(stream)+"/stats", nil, &info); err != nil {
		return 0, err
	}
	return info.Version, nil
}

// encodeQuery lowers a facade query to its wire form. Every query value the
// facade constructs marshals itself into exactly the wire.Query shape, so
// the round trip is the identity on fields; legacy and custom-pattern
// queries report their encodability error here, before any request is made.
func encodeQuery(stream string, q streamcount.Query) (wire.Query, error) {
	data, err := json.Marshal(q)
	if err != nil {
		var merr *json.MarshalerError
		if errors.As(err, &merr) {
			err = merr.Unwrap()
		}
		return wire.Query{}, fmt.Errorf("client: query is not wire-encodable: %w", err)
	}
	var wq wire.Query
	if err := json.Unmarshal(data, &wq); err != nil {
		return wire.Query{}, fmt.Errorf("client: query round-trip: %w", err)
	}
	wq.Stream = stream
	return wq, nil
}

// outcomeFromWire rehydrates a served query into the facade's Outcome.
func outcomeFromWire(r *wire.QueryResult) streamcount.Outcome {
	o := streamcount.Outcome{Kind: r.Kind, StreamVersion: r.StreamVersion}
	if r.Count != nil {
		o.Count = countFromWire(r.Count)
	}
	if r.Sample != nil {
		sr := &streamcount.SampleResult{Found: r.Sample.Found, Passes: r.Sample.Passes}
		if r.Sample.Found {
			sr.Copy.Vertices = r.Sample.Vertices
			for _, e := range r.Sample.Edges {
				sr.Copy.Edges = append(sr.Copy.Edges, streamcount.Edge{U: e[0], V: e[1]})
			}
		}
		o.Sample = sr
	}
	if r.Decision != nil {
		o.Decision = &streamcount.DistinguishResult{Above: r.Decision.Above, Estimate: countFromWire(r.Decision.Estimate)}
	}
	return o
}

func countFromWire(c *wire.Count) *streamcount.CountResult {
	if c == nil {
		return nil
	}
	return &streamcount.CountResult{
		Value: c.Value, M: c.M, Passes: c.Passes,
		Queries: c.Queries, SpaceWords: c.SpaceWords, Trials: c.Trials,
	}
}

// Submit runs q on the daemon's default stream. It implements
// streamcount.Querier.
func (c *Client) Submit(ctx context.Context, q streamcount.Query) (streamcount.Outcome, error) {
	return c.SubmitOn(ctx, "", q)
}

// SubmitOn is Submit against a named stream. The returned Outcome is
// bit-identical to a local engine's at the same (seed, stream version);
// like the local engine, the authoritative version is the Outcome's
// StreamVersion.
func (c *Client) SubmitOn(ctx context.Context, stream string, q streamcount.Query) (streamcount.Outcome, error) {
	fail := streamcount.Outcome{Kind: q.Kind()}
	wq, err := encodeQuery(stream, q)
	if err != nil {
		return fail, err
	}
	var resp wire.QueryResult
	if err := c.doJSON(ctx, http.MethodPost, "/v1/queries", wq, &resp); err != nil {
		return fail, err
	}
	return outcomeFromWire(&resp), nil
}

// watchConn is one live SSE connection of a (possibly reconnecting) watch.
type watchConn struct {
	cancel context.CancelFunc
	body   io.ReadCloser
	r      *bufio.Reader
}

func (wc *watchConn) close() {
	wc.cancel()
	wc.body.Close()
}

// dialWatch performs one watch-connection attempt. The connection's request
// context derives from ctx and is additionally cancelable via the returned
// conn, so the subscription can sever a connection it is done with.
func (c *Client) dialWatch(ctx context.Context, body []byte) (*watchConn, error) {
	reqCtx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, c.base+"/v1/watches", bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	if c.tenant != "" {
		req.Header.Set("X-Tenant", c.tenant)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		cancel()
		return nil, wrapTransport(ctx, err)
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		cancel()
		return nil, statusError(resp.StatusCode, resp.Header, data)
	}
	return &watchConn{cancel: cancel, body: resp.Body, r: bufio.NewReader(resp.Body)}, nil
}

// openWatch dials a watch, retrying retryable failures under the client's
// policy — so establishing (or re-establishing) a watch against a daemon
// mid-restart waits the restart out instead of failing.
func (c *Client) openWatch(ctx context.Context, req wire.WatchRequest) (*watchConn, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode watch request: %w", err)
	}
	attempts := c.retry.attempts()
	for attempt := 0; ; attempt++ {
		conn, err := c.dialWatch(ctx, data)
		if err == nil {
			return conn, nil
		}
		retry, serverDelay := retryDecision(err)
		if !retry || attempt+1 >= attempts || ctx.Err() != nil {
			return nil, err
		}
		delay := c.retry.delay(attempt)
		if serverDelay > delay {
			delay = serverDelay
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, wrapTransport(ctx, ctx.Err())
		}
	}
}

// WatchQuery registers q as a standing query on the named stream and
// returns the untyped subscription, implementing streamcount.Watcher: the
// daemon holds a Server-Sent-Events connection open and streams one event
// per evaluation, each bit-identical to a standalone run at its reported
// (WatchSeedAt(seed, version), version).
//
// The subscription is self-healing: when the connection drops or the
// server restarts (drain, crash, recovery window), the client reconnects
// under its retry policy and resumes from the last delivered stream
// version, so the subscription's transcript stays gap- and duplicate-free
// across server restarts — identical to the transcript of an uninterrupted
// watch. Event generations are numbered by the client and stay contiguous
// across reconnects. The subscription ends — with the terminal error on
// the final event and from Err — when ctx is canceled, Close is called, a
// reconnect exhausts the retry policy, or the server reports a
// non-retryable end.
func (c *Client) WatchQuery(ctx context.Context, stream string, q streamcount.Query, opts ...streamcount.WatchOption) (*streamcount.Subscription[streamcount.Outcome], error) {
	cfg := streamcount.NewWatchConfig(opts...)
	wq, err := encodeQuery(stream, q)
	if err != nil {
		return nil, err
	}
	req := wire.WatchRequest{Query: wq, Policy: wire.PolicyLatest}
	if cfg.EveryVersion {
		req.Policy = wire.PolicyEvery
	}
	if cfg.AfterVersion > 0 {
		req.After = cfg.AfterVersion
	}

	// The first connection is established synchronously, so misconfigured
	// watches (bad pattern, unknown stream) fail the call itself, exactly
	// like the local engine's WatchQuery.
	conn, err := c.openWatch(ctx, req)
	if err != nil {
		return nil, err
	}

	sub := streamcount.NewSubscription(cfg.Buffer, func(sctx context.Context, emit func(streamcount.WatchEvent[streamcount.Outcome]) bool) error {
		last := req.After
		var gen int64
		for {
			// Closing the subscription severs the live connection, which
			// unblocks the blocking reads below.
			stop := context.AfterFunc(sctx, conn.cancel)
			done, err := c.consumeWatch(ctx, sctx, conn.r, emit, &last, &gen)
			stop()
			conn.close()
			if done {
				return err
			}
			// Retryable interruption: reconnect and resume past the last
			// delivered version. openWatch waits out restarts; if it cannot
			// get a connection, the watch ends with the dial error.
			rreq := req
			rreq.After = last
			if conn, err = c.openWatch(ctx, rreq); err != nil {
				if sctx.Err() != nil {
					return streamcount.ErrWatchClosed
				}
				return fmt.Errorf("client: watch could not reconnect: %w", err)
			}
		}
	})
	return sub, nil
}

// retryableEndCode reports whether a server-sent terminal event names a
// condition a reconnect resolves: a draining or recovering server (a
// restart in progress), a closed engine (ditto), this client having been
// cut as a slow consumer, or the stream shipping to another cluster node
// (resume picks up where it left off — against whichever node owns the
// stream by then).
func retryableEndCode(code string) bool {
	switch code {
	case wire.CodeDraining, wire.CodeRecovering, wire.CodeEngineClosed,
		wire.CodeSlowConsumer, wire.CodeTransferring:
		return true
	}
	return false
}

// consumeWatch parses one SSE connection and feeds the subscription,
// tracking the last delivered stream version in *last and the client-local
// generation counter in *gen. It returns done=true with the subscription's
// terminal error, or done=false when the connection was lost (or ended) in
// a way a resuming reconnect heals.
func (c *Client) consumeWatch(ctx, sctx context.Context, r *bufio.Reader, emit func(streamcount.WatchEvent[streamcount.Outcome]) bool, last, gen *int64) (bool, error) {
	closedErr := func() error {
		switch {
		case sctx.Err() != nil: // consumer Close
			return streamcount.ErrWatchClosed
		case ctx.Err() != nil: // caller context
			return fmt.Errorf("client: watch: %w: %w", streamcount.ErrCanceled, context.Cause(ctx))
		default:
			return nil
		}
	}
	for {
		name, data, err := readSSEEvent(r)
		if err != nil {
			if cerr := closedErr(); cerr != nil {
				return true, cerr
			}
			return false, fmt.Errorf("client: watch connection lost: %w", err)
		}
		switch name {
		case "watch": // registration acknowledgment; nothing to surface
		case "result":
			var we wire.WatchEvent
			if err := json.Unmarshal(data, &we); err != nil || we.Result == nil {
				return true, fmt.Errorf("client: undecodable watch event %q: %v", data, err)
			}
			o := outcomeFromWire(we.Result)
			*last = o.StreamVersion
			ev := streamcount.WatchEvent[streamcount.Outcome]{
				Result:        o,
				StreamVersion: o.StreamVersion,
				Generation:    *gen, // client-local: contiguous across reconnects
			}
			*gen++
			if !emit(ev) {
				return true, streamcount.ErrWatchClosed
			}
		case "end":
			var end wire.WatchEnd
			if err := json.Unmarshal(data, &end); err != nil {
				return true, fmt.Errorf("client: undecodable end event %q: %w", data, err)
			}
			if retryableEndCode(end.Code) {
				if cerr := closedErr(); cerr != nil {
					return true, cerr
				}
				return false, fmt.Errorf("client: watch ended by server: %s", end.Error)
			}
			if sentinel := codeSentinel(end.Code); sentinel != nil {
				return true, fmt.Errorf("client: watch ended by server: %s: %w", end.Error, sentinel)
			}
			return true, fmt.Errorf("client: watch ended by server: %s", end.Error)
		default: // unknown event types are skipped for forward compatibility
		}
	}
}

// readSSEEvent parses one complete server-sent event, skipping heartbeat
// comments and blank keep-alives.
func readSSEEvent(r *bufio.Reader) (name string, data []byte, err error) {
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return "", nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if name != "" || len(data) > 0 {
				return name, data, nil
			}
		case strings.HasPrefix(line, ":"): // comment / heartbeat
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		}
	}
}

// Compile-time interface symmetry with the local engine.
var (
	_ streamcount.Querier = (*Client)(nil)
	_ streamcount.Watcher = (*Client)(nil)
	_ streamcount.Querier = (*streamcount.Engine)(nil)
	_ streamcount.Watcher = (*streamcount.Engine)(nil)
)
