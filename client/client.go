// Package client is the Go SDK for streamcountd, the streamcount network
// daemon. Its Client implements the same streamcount.Querier and
// streamcount.Watcher interfaces as the in-process *streamcount.Engine, so
// query code — including the generic streamcount.Do / streamcount.Watch
// entry points and whole watch-loops — runs unchanged against a local
// engine or a remote daemon:
//
//	c, _ := client.New("http://localhost:8470")
//	p, _ := streamcount.PatternByName("triangle")
//	est, err := streamcount.Do(ctx, c, streamcount.CountQuery(p,
//	    streamcount.WithTrials(100000), streamcount.WithSeed(7)))
//
// Results are bit-identical to the same query against a local engine over
// the same stream prefix: the daemon executes the identical code at the
// identical (seed, stream_version), and the JSON float encoding
// round-trips exactly.
//
// Standing queries arrive over Server-Sent Events and surface as the same
// streamcount.Subscription the local engine returns:
//
//	sub, _ := streamcount.Watch(ctx, c, "live", streamcount.CountQuery(p,
//	    streamcount.WithTrials(50000), streamcount.WithSeed(7)))
//	for ev := range sub.Events() { ... }
//
// Errors carry the facade's typed sentinels (streamcount.ErrUnknownStream,
// ErrBadConfig, ...) rehydrated from the wire, so errors.Is dispatch works
// across the network boundary.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"streamcount"
	"streamcount/internal/wire"
)

// Client is a streamcountd API client. It is safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). Note that a client-wide Timeout would also
// kill long-lived watch connections; prefer per-request contexts.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8470").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http(s)", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), http: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// apiError reconstructs a typed error from a non-2xx response. The wire
// error code is authoritative; the HTTP status is the fallback for bodies
// without one (proxies, old servers).
func apiError(status int, body []byte) error {
	var we wire.Error
	msg := strings.TrimSpace(string(body))
	if err := json.Unmarshal(body, &we); err == nil && we.Error != "" {
		msg = we.Error
	}
	sentinel := codeSentinel(we.Code)
	if sentinel == nil && we.Code == "" {
		// No code at all (plain validation failures, proxies): fall back to
		// the status. A present-but-unrecognized code (e.g. watch_limit, or
		// one from a newer server) is deliberately left sentinel-less rather
		// than mislabeled.
		switch status {
		case http.StatusNotFound:
			sentinel = streamcount.ErrUnknownStream
		case http.StatusConflict:
			sentinel = streamcount.ErrNotAppendable
		case http.StatusBadRequest:
			sentinel = streamcount.ErrBadConfig
		case http.StatusServiceUnavailable:
			sentinel = streamcount.ErrEngineClosed
		}
	}
	if sentinel != nil {
		return fmt.Errorf("client: server %d: %s: %w", status, msg, sentinel)
	}
	return fmt.Errorf("client: server %d: %s", status, msg)
}

// codeSentinel maps a wire error code to the facade sentinel it names.
func codeSentinel(code string) error {
	switch code {
	case wire.CodeUnknownStream:
		return streamcount.ErrUnknownStream
	case wire.CodeNotAppendable:
		return streamcount.ErrNotAppendable
	case wire.CodeBadPattern:
		return streamcount.ErrBadPattern
	case wire.CodeBadConfig:
		return streamcount.ErrBadConfig
	case wire.CodeCanceled:
		return streamcount.ErrCanceled
	case wire.CodeEngineClosed:
		return streamcount.ErrEngineClosed
	case wire.CodeWatchClosed, wire.CodeDraining:
		return streamcount.ErrWatchClosed
	default:
		return nil
	}
}

// doJSON performs one request with a JSON body (when in is non-nil) and
// decodes a JSON response into out (when non-nil).
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return wrapTransport(ctx, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return wrapTransport(ctx, err)
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: undecodable response: %w", err)
		}
	}
	return nil
}

// wrapTransport maps a transport-level failure: a canceled or expired
// context surfaces as the facade's ErrCanceled (wrapping the context error,
// so both errors.Is checks work), exactly as a local engine would report
// it.
func wrapTransport(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("client: %w: %w", streamcount.ErrCanceled, ctxErr)
	}
	return fmt.Errorf("client: %w", err)
}

// CreateStream creates an appendable stream on the daemon with vertices
// 0..n-1.
func (c *Client) CreateStream(ctx context.Context, name string, n int64) error {
	return c.doJSON(ctx, http.MethodPost, "/v1/streams", wire.CreateStreamRequest{Name: name, N: n}, nil)
}

// Streams returns the daemon's registered stream names.
func (c *Client) Streams(ctx context.Context) ([]string, error) {
	var list wire.StreamsList
	if err := c.doJSON(ctx, http.MethodGet, "/v1/streams", nil, &list); err != nil {
		return nil, err
	}
	return list.Streams, nil
}

// Append publishes updates to the named stream's append-only log and
// returns the new stream version — the same contract as
// streamcount.Engine.Append.
func (c *Client) Append(ctx context.Context, stream string, ups []streamcount.Update) (int64, error) {
	req := wire.AppendRequest{Updates: make([]wire.Update, len(ups))}
	for i, u := range ups {
		w := wire.Update{U: u.Edge.U, V: u.Edge.V}
		if u.Op == streamcount.Delete {
			w.Op = "-"
		}
		req.Updates[i] = w
	}
	var resp wire.AppendResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/streams/"+url.PathEscape(stream)+"/edges", req, &resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// StreamVersion returns the named stream's current version.
func (c *Client) StreamVersion(ctx context.Context, stream string) (int64, error) {
	var info wire.StreamInfo
	if err := c.doJSON(ctx, http.MethodGet, "/v1/streams/"+url.PathEscape(stream)+"/stats", nil, &info); err != nil {
		return 0, err
	}
	return info.Version, nil
}

// encodeQuery lowers a facade query to its wire form. Every query value the
// facade constructs marshals itself into exactly the wire.Query shape, so
// the round trip is the identity on fields; legacy and custom-pattern
// queries report their encodability error here, before any request is made.
func encodeQuery(stream string, q streamcount.Query) (wire.Query, error) {
	data, err := json.Marshal(q)
	if err != nil {
		var merr *json.MarshalerError
		if errors.As(err, &merr) {
			err = merr.Unwrap()
		}
		return wire.Query{}, fmt.Errorf("client: query is not wire-encodable: %w", err)
	}
	var wq wire.Query
	if err := json.Unmarshal(data, &wq); err != nil {
		return wire.Query{}, fmt.Errorf("client: query round-trip: %w", err)
	}
	wq.Stream = stream
	return wq, nil
}

// outcomeFromWire rehydrates a served query into the facade's Outcome.
func outcomeFromWire(r *wire.QueryResult) streamcount.Outcome {
	o := streamcount.Outcome{Kind: r.Kind, StreamVersion: r.StreamVersion}
	if r.Count != nil {
		o.Count = countFromWire(r.Count)
	}
	if r.Sample != nil {
		sr := &streamcount.SampleResult{Found: r.Sample.Found, Passes: r.Sample.Passes}
		if r.Sample.Found {
			sr.Copy.Vertices = r.Sample.Vertices
			for _, e := range r.Sample.Edges {
				sr.Copy.Edges = append(sr.Copy.Edges, streamcount.Edge{U: e[0], V: e[1]})
			}
		}
		o.Sample = sr
	}
	if r.Decision != nil {
		o.Decision = &streamcount.DistinguishResult{Above: r.Decision.Above, Estimate: countFromWire(r.Decision.Estimate)}
	}
	return o
}

func countFromWire(c *wire.Count) *streamcount.CountResult {
	if c == nil {
		return nil
	}
	return &streamcount.CountResult{
		Value: c.Value, M: c.M, Passes: c.Passes,
		Queries: c.Queries, SpaceWords: c.SpaceWords, Trials: c.Trials,
	}
}

// Submit runs q on the daemon's default stream. It implements
// streamcount.Querier.
func (c *Client) Submit(ctx context.Context, q streamcount.Query) (streamcount.Outcome, error) {
	return c.SubmitOn(ctx, "", q)
}

// SubmitOn is Submit against a named stream. The returned Outcome is
// bit-identical to a local engine's at the same (seed, stream version);
// like the local engine, the authoritative version is the Outcome's
// StreamVersion.
func (c *Client) SubmitOn(ctx context.Context, stream string, q streamcount.Query) (streamcount.Outcome, error) {
	fail := streamcount.Outcome{Kind: q.Kind()}
	wq, err := encodeQuery(stream, q)
	if err != nil {
		return fail, err
	}
	var resp wire.QueryResult
	if err := c.doJSON(ctx, http.MethodPost, "/v1/queries", wq, &resp); err != nil {
		return fail, err
	}
	return outcomeFromWire(&resp), nil
}

// WatchQuery registers q as a standing query on the named stream and
// returns the untyped subscription, implementing streamcount.Watcher: the
// daemon holds a Server-Sent-Events connection open and streams one event
// per evaluation, each bit-identical to a standalone run at its reported
// (WatchSeedAt(seed, version), version). The subscription ends — with the
// terminal error on the final event and from Err — when ctx is canceled,
// Close is called, the connection drops, or the server drains.
func (c *Client) WatchQuery(ctx context.Context, stream string, q streamcount.Query, opts ...streamcount.WatchOption) (*streamcount.Subscription[streamcount.Outcome], error) {
	cfg := streamcount.NewWatchConfig(opts...)
	wq, err := encodeQuery(stream, q)
	if err != nil {
		return nil, err
	}
	req := wire.WatchRequest{Query: wq, Policy: wire.PolicyLatest}
	if cfg.EveryVersion {
		req.Policy = wire.PolicyEvery
	}
	data, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode watch request: %w", err)
	}

	// The request context must outlive this call: it is the subscription's
	// connection. It is canceled when the caller's ctx fires or when the
	// subscription's feed ends (Close or terminal event).
	reqCtx, cancel := context.WithCancel(ctx)
	httpReq, err := http.NewRequestWithContext(reqCtx, http.MethodPost, c.base+"/v1/watches", bytes.NewReader(data))
	if err != nil {
		cancel()
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(httpReq)
	if err != nil {
		cancel()
		return nil, wrapTransport(ctx, err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		cancel()
		return nil, apiError(resp.StatusCode, body)
	}

	sub := streamcount.NewSubscription(cfg.Buffer, func(sctx context.Context, emit func(streamcount.WatchEvent[streamcount.Outcome]) bool) error {
		defer resp.Body.Close()
		defer cancel()
		// Closing the subscription cancels the connection, which unblocks
		// the blocking reads below.
		stop := context.AfterFunc(sctx, cancel)
		defer stop()
		return c.consumeWatch(ctx, sctx, bufio.NewReader(resp.Body), emit)
	})
	return sub, nil
}

// consumeWatch parses the SSE stream and feeds the subscription, returning
// its terminal error.
func (c *Client) consumeWatch(ctx, sctx context.Context, r *bufio.Reader, emit func(streamcount.WatchEvent[streamcount.Outcome]) bool) error {
	closedErr := func() error {
		switch {
		case sctx.Err() != nil: // consumer Close
			return streamcount.ErrWatchClosed
		case ctx.Err() != nil: // caller context
			return fmt.Errorf("client: watch: %w: %w", streamcount.ErrCanceled, context.Cause(ctx))
		default:
			return nil
		}
	}
	for {
		name, data, err := readSSEEvent(r)
		if err != nil {
			if cerr := closedErr(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("client: watch connection lost: %w", err)
		}
		switch name {
		case "watch": // registration acknowledgment; nothing to surface
		case "result":
			var we wire.WatchEvent
			if err := json.Unmarshal(data, &we); err != nil || we.Result == nil {
				return fmt.Errorf("client: undecodable watch event %q: %v", data, err)
			}
			o := outcomeFromWire(we.Result)
			ev := streamcount.WatchEvent[streamcount.Outcome]{
				Result:        o,
				StreamVersion: o.StreamVersion,
				Generation:    we.Generation,
			}
			if !emit(ev) {
				return streamcount.ErrWatchClosed
			}
		case "end":
			var end wire.WatchEnd
			if err := json.Unmarshal(data, &end); err != nil {
				return fmt.Errorf("client: undecodable end event %q: %w", data, err)
			}
			if sentinel := codeSentinel(end.Code); sentinel != nil {
				return fmt.Errorf("client: watch ended by server: %s: %w", end.Error, sentinel)
			}
			return fmt.Errorf("client: watch ended by server: %s", end.Error)
		default: // unknown event types are skipped for forward compatibility
		}
	}
}

// readSSEEvent parses one complete server-sent event, skipping heartbeat
// comments and blank keep-alives.
func readSSEEvent(r *bufio.Reader) (name string, data []byte, err error) {
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return "", nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if name != "" || len(data) > 0 {
				return name, data, nil
			}
		case strings.HasPrefix(line, ":"): // comment / heartbeat
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		}
	}
}

// Compile-time interface symmetry with the local engine.
var (
	_ streamcount.Querier = (*Client)(nil)
	_ streamcount.Watcher = (*Client)(nil)
	_ streamcount.Querier = (*streamcount.Engine)(nil)
	_ streamcount.Watcher = (*streamcount.Engine)(nil)
)
