package client

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"math"
	mrand "math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"streamcount/internal/wire"
)

// RetryPolicy controls the client's self-healing behavior: how many times a
// retryable request (transport failure, 429, 502, 503, 504) is attempted
// and how the delay between attempts grows. Retries are safe on every
// endpoint the client retries: queries and reads are pure, and Append
// attaches an Idempotency-Key so a replay of an already-applied batch
// returns the original receipt instead of double-ingesting.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts (first try included). Values < 1
	// mean one attempt — no retries.
	MaxAttempts int
	// BaseDelay is the delay after the first failed attempt; it doubles
	// each retry up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (0: uncapped).
	MaxDelay time.Duration
	// Jitter spreads each delay uniformly over ±Jitter·delay so a fleet of
	// retrying clients does not stampede a recovering server. 0 disables.
	Jitter float64
}

// DefaultRetryPolicy is the policy New installs: 8 attempts, 100ms base
// delay doubling to a 2s cap, ±20% jitter — a client span of roughly seven
// seconds, enough to ride out a daemon restart.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.2}
}

// WithRetry replaces the client's retry policy. RetryPolicy{MaxAttempts: 1}
// disables retries entirely.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// jitterMu guards the shared jitter source. math/rand's global source would
// do, but a private one keeps the client's behavior independent of callers
// reseeding the global.
var (
	jitterMu  sync.Mutex
	jitterRng = mrand.New(mrand.NewSource(time.Now().UnixNano()))
)

// delay returns the backoff before attempt+2 (i.e. after the attempt-th
// try, 0-based) under the policy.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	if attempt > 0 {
		if attempt > 20 { // avoid overflowing the shift
			attempt = 20
		}
		d <<= attempt
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		jitterMu.Lock()
		f := 1 + p.Jitter*(2*jitterRng.Float64()-1)
		jitterMu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// apiStatusError decorates an API error with the HTTP status, the
// server's Retry-After hint, and the decoded wire error body, so the retry
// loop can honor the first two without string matching and the routing
// layer can read a wrong_node redirect's Owner/OwnerAddr/ClusterVersion
// from the third. Unwrap preserves the typed sentinel chain.
type apiStatusError struct {
	status     int
	retryAfter time.Duration
	api        wire.Error
	err        error
}

func (e *apiStatusError) Error() string { return e.err.Error() }
func (e *apiStatusError) Unwrap() error { return e.err }

// retryableStatus reports whether a response status is worth retrying:
// overload and gateway conditions, plus 503 — which streamcountd sends for
// "recovering" and "draining", both of which a restart resolves.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryDecision inspects an attempt's error: whether to retry, and the
// minimum delay the server asked for (0 when it didn't).
func retryDecision(err error) (retry bool, serverDelay time.Duration) {
	var se *apiStatusError
	if errors.As(err, &se) {
		return retryableStatus(se.status), se.retryAfter
	}
	// Anything that never produced a status line is a transport failure —
	// connection refused mid-restart, a dropped connection — and retryable.
	// Context expiry is handled by the retry loop itself.
	return true, 0
}

// parseRetryAfter reads a Retry-After header (delta-seconds form; the HTTP
// date form is rare enough to ignore — the backoff still applies).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil || secs <= 0 || secs > math.MaxInt32 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}

// newIdempotencyKey returns a fresh random key for one logical Append. The
// same key is sent on every retry of that append, so the server can
// recognize a replay of a batch it already applied.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// the jitter source rather than panicking in a client library.
		jitterMu.Lock()
		jitterRng.Read(b[:])
		jitterMu.Unlock()
	}
	return hex.EncodeToString(b[:])
}

// attempts normalizes MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}
