package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"streamcount"
	"streamcount/client"
)

// TestAppendSurfacesDegradedDurability: a 200 acknowledgment carrying a
// warning (published, but the server's disk is failing) must reach the
// remote caller the same way the local engine reports it — the real new
// version alongside an error wrapping streamcount.ErrEvictFailed — not as
// silent success.
func TestAppendSurfacesDegradedDurability(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"version":5,"appended":2,"warning":"stream: segment eviction failed"}`))
	}))
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Append(context.Background(), "live", []streamcount.Update{
		{Edge: streamcount.Edge{U: 0, V: 1}},
		{Edge: streamcount.Edge{U: 1, V: 2}},
	})
	if !errors.Is(err, streamcount.ErrEvictFailed) {
		t.Fatalf("append with warning: err %v, want ErrEvictFailed", err)
	}
	if v != 5 {
		t.Fatalf("append with warning: version %d, want the published 5", v)
	}
}

// TestAppendRetriesReceiptFailure: a keyed append the server rejects with
// 503/receipt_failed (its receipt journal could not be written; nothing was
// published) is retried automatically under the SAME Idempotency-Key, and
// the sentinel is rehydrated for callers when retries run out.
func TestAppendRetriesReceiptFailure(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	fails := 2
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		n, limit := len(keys), fails
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if n <= limit {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"stream: append receipt write failed","code":"receipt_failed"}`))
			return
		}
		w.Write([]byte(`{"version":3,"appended":3}`))
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	ups := []streamcount.Update{
		{Edge: streamcount.Edge{U: 0, V: 1}},
		{Edge: streamcount.Edge{U: 1, V: 2}},
		{Edge: streamcount.Edge{U: 2, V: 3}},
	}
	v, err := c.Append(context.Background(), "live", ups)
	if err != nil || v != 3 {
		t.Fatalf("append through receipt failures: version %d err %v", v, err)
	}
	mu.Lock()
	if len(keys) != fails+1 {
		mu.Unlock()
		t.Fatalf("%d attempts, want %d", len(keys), fails+1)
	}
	for i, k := range keys {
		if k == "" || k != keys[0] {
			mu.Unlock()
			t.Fatalf("attempt %d key %q, want the first attempt's %q on every retry", i, k, keys[0])
		}
	}
	// When retries run out, the typed sentinel survives to the caller.
	fails = 1 << 30
	keys = nil
	mu.Unlock()
	c2, err := client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Append(context.Background(), "live", ups); !errors.Is(err, streamcount.ErrReceiptFailed) {
		t.Fatalf("exhausted retries: err %v, want ErrReceiptFailed", err)
	}
}
