package client_test

// End-to-end cluster tests through the routing SDK: the full Querier/
// Watcher contract suite runs against a 3-node cluster and must produce a
// transcript bit-identical to the single local engine, and a standing query
// must survive a live ownership transfer of its stream with no gap and no
// duplicate in its event transcript.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"streamcount"
	"streamcount/client"
	"streamcount/internal/cluster"
	"streamcount/internal/server"
	"streamcount/internal/wire"
)

// clusterSwap lets the httptest listeners exist before the servers behind
// them: peer addresses must be known to configure the servers.
type clusterSwap struct{ h atomic.Value }

func (cs *clusterSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, _ := cs.h.Load().(http.Handler); h != nil {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not up yet", http.StatusServiceUnavailable)
}

// clusterFixture is an in-process cluster reachable over real HTTP.
type clusterFixture struct {
	seeds []string
	ids   []string
	srvs  []*server.Server
}

func newClusterFixture(t *testing.T, n int, durable bool) *clusterFixture {
	t.Helper()
	f := &clusterFixture{}
	swaps := make([]*clusterSwap, n)
	peers := make([]wire.ClusterNode, n)
	for i := range swaps {
		swaps[i] = &clusterSwap{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		peers[i] = wire.ClusterNode{ID: fmt.Sprintf("n%d", i+1), Addr: ts.URL}
		f.seeds = append(f.seeds, ts.URL)
		f.ids = append(f.ids, peers[i].ID)
	}
	for i := range peers {
		opts := server.Options{
			WatchHeartbeat: 50 * time.Millisecond,
			ClusterNode:    peers[i].ID,
			ClusterPeers:   peers,
		}
		if durable {
			opts.SegmentDir = t.TempDir()
		}
		srv, err := server.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srv.WaitReady(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		swaps[i].h.Store(http.Handler(srv))
		f.srvs = append(f.srvs, srv)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Close(ctx); err != nil {
				t.Errorf("server close: %v", err)
			}
		})
	}
	return f
}

// ownerID resolves which node the cluster map assigns the stream to.
func (f *clusterFixture) ownerID(t *testing.T, cl *client.Cluster, stream string) string {
	t.Helper()
	wm, err := cl.ClusterMap(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wm.Self = ""
	m, err := cluster.FromWire(wm)
	if err != nil {
		t.Fatal(err)
	}
	return m.Owner(stream).ID
}

// clusterTarget adapts a routing client over a 3-node cluster to the
// contract-suite target: same interface, requests fan out to whichever
// node owns each stream.
func clusterTarget(t *testing.T) target {
	t.Helper()
	f := newClusterFixture(t, 3, false)
	cl, err := client.NewCluster(f.seeds)
	if err != nil {
		t.Fatal(err)
	}
	return target{
		w: cl,
		create: func(t *testing.T, name string, n int64) {
			if err := cl.CreateStream(context.Background(), name, n); err != nil {
				t.Fatal(err)
			}
		},
		append: func(t *testing.T, stream string, ups []streamcount.Update) int64 {
			v, err := cl.Append(context.Background(), stream, ups)
			if err != nil {
				t.Fatal(err)
			}
			return v
		},
	}
}

// TestClusterQuerierContract runs the shared contract suite against the
// 3-node cluster and requires its transcript — every result bit, every
// watch event, every error mapping — to be identical to the single local
// engine's.
func TestClusterQuerierContract(t *testing.T) {
	transcripts := map[string][]string{}
	t.Run("local", func(t *testing.T) {
		transcripts["local"] = runContractSuite(t, localTarget(t))
	})
	t.Run("cluster", func(t *testing.T) {
		transcripts["cluster"] = runContractSuite(t, clusterTarget(t))
	})
	local, clu := transcripts["local"], transcripts["cluster"]
	if len(local) == 0 || len(clu) == 0 {
		t.Fatal("a suite produced no transcript")
	}
	if len(local) != len(clu) {
		t.Fatalf("transcript lengths differ: local %d, cluster %d\nlocal: %v\ncluster: %v",
			len(local), len(clu), local, clu)
	}
	for i := range local {
		if local[i] != clu[i] {
			t.Errorf("transcript line %d diverges:\n  local:   %s\n  cluster: %s", i, local[i], clu[i])
		}
	}
}

// TestClusterWatchAcrossTransfer moves a stream to another node while a
// routed standing query is live on it. The server ends the watch with a
// terminal transferring event; the SDK re-resolves the owner and resumes
// with after_version, so the combined event transcript must equal — version
// by version, bit by bit — that of an uninterrupted watch on a local
// engine fed the same batches.
func TestClusterWatchAcrossTransfer(t *testing.T) {
	ctx := context.Background()
	f := newClusterFixture(t, 3, true)
	cl, err := client.NewCluster(f.seeds)
	if err != nil {
		t.Fatal(err)
	}

	const name = "mvw"
	const n, m = 60, 300
	if err := cl.CreateStream(ctx, name, n); err != nil {
		t.Fatal(err)
	}
	ups := contractEdges(n, m)
	cuts := []int{m / 5, 2 * m / 5, 3 * m / 5, 4 * m / 5, m}
	const transferAfter = 2 // batches delivered before the stream moves

	// The oracle: the same watch on a plain local engine, never interrupted.
	def, err := streamcount.NewAppendableStream(16, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := streamcount.NewEngine(def)
	defer eng.Close()
	app, err := streamcount.NewAppendableStream(n, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterStream(name, app); err != nil {
		t.Fatal(err)
	}

	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	q := streamcount.CountQuery(p, streamcount.WithTrials(400), streamcount.WithSeed(7))
	refSub, err := streamcount.Watch(ctx, eng, name, q, streamcount.WatchEveryVersion())
	if err != nil {
		t.Fatal(err)
	}
	defer refSub.Close()
	sub, err := streamcount.Watch(ctx, cl, name, q, streamcount.WatchEveryVersion())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	collect := func(s *streamcount.Subscription[*streamcount.CountResult], what string) streamcount.WatchEvent[*streamcount.CountResult] {
		t.Helper()
		select {
		case ev := <-s.Events():
			if ev.Err != nil {
				t.Fatalf("%s watch failed: %v", what, ev.Err)
			}
			return ev
		case <-time.After(30 * time.Second):
			t.Fatalf("no %s watch event", what)
		}
		panic("unreachable")
	}

	prev := 0
	for i, cut := range cuts {
		if i == transferAfter {
			// Move the stream out from under the live watch.
			owner := f.ownerID(t, cl, name)
			target := f.ids[0]
			if target == owner {
				target = f.ids[1]
			}
			tr, err := cl.Transfer(ctx, name, target)
			if err != nil {
				t.Fatal(err)
			}
			if tr.StreamVersion != int64(prev) {
				t.Fatalf("transfer sealed version %d, want %d", tr.StreamVersion, prev)
			}
			if after := f.ownerID(t, cl, name); after != target {
				t.Fatalf("stream owned by %s after transfer to %s", after, target)
			}
		}
		if _, err := eng.Append(name, ups[prev:cut]); err != nil {
			t.Fatal(err)
		}
		v, err := cl.Append(ctx, name, ups[prev:cut])
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(cut) {
			t.Fatalf("batch %d acknowledged at version %d, want %d (gap or duplicate)", i, v, cut)
		}
		prev = cut

		ref := collect(refSub, "reference")
		got := collect(sub, "routed")
		if got.StreamVersion != ref.StreamVersion {
			t.Fatalf("batch %d: routed event at version %d, reference at %d", i, got.StreamVersion, ref.StreamVersion)
		}
		if gf, rf := fpCount(got.Result), fpCount(ref.Result); gf != rf {
			t.Errorf("batch %d (version %d): routed %s != reference %s", i, got.StreamVersion, gf, rf)
		}
	}
}
