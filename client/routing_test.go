package client

// Internal routing tests: these reach the unexported routed/appendKeyed
// plumbing to pin down the exactly-once guarantee — one idempotency key per
// logical append, replayed verbatim across wrong_node redirects, so a
// retry that lands on the stream's new owner after a transfer dedups
// against the shipped receipt journal instead of double-publishing.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"streamcount"
	"streamcount/internal/cluster"
	"streamcount/internal/server"
	"streamcount/internal/wire"
)

type routingSwap struct{ h atomic.Value }

func (rs *routingSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, _ := rs.h.Load().(http.Handler); h != nil {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not up yet", http.StatusServiceUnavailable)
}

// newRoutingCluster starts n durable cluster nodes and returns their seed
// URLs and member IDs.
func newRoutingCluster(t *testing.T, n int) (seeds, ids []string) {
	t.Helper()
	swaps := make([]*routingSwap, n)
	peers := make([]wire.ClusterNode, n)
	for i := range swaps {
		swaps[i] = &routingSwap{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		peers[i] = wire.ClusterNode{ID: fmt.Sprintf("n%d", i+1), Addr: ts.URL}
		seeds = append(seeds, ts.URL)
		ids = append(ids, peers[i].ID)
	}
	for i := range peers {
		srv, err := server.New(server.Options{
			SegmentDir:   t.TempDir(),
			ClusterNode:  peers[i].ID,
			ClusterPeers: peers,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srv.WaitReady(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		swaps[i].h.Store(http.Handler(srv))
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Close(ctx); err != nil {
				t.Errorf("server close: %v", err)
			}
		})
	}
	return seeds, ids
}

// TestClusterKeyedAppendExactlyOnce replays a keyed append through a client
// whose cached map is stale after a transfer: the request hits the old
// owner, follows the typed wrong_node redirect to the new one, and the
// shipped receipt journal recognizes the key — the replay acks the original
// version and the stream does not grow.
func TestClusterKeyedAppendExactlyOnce(t *testing.T) {
	ctx := context.Background()
	seeds, ids := newRoutingCluster(t, 3)

	admin, err := NewCluster(seeds)
	if err != nil {
		t.Fatal(err)
	}
	// stale holds a map cached before the transfer and never refreshed by
	// anything but its own routing.
	stale, err := NewCluster(seeds)
	if err != nil {
		t.Fatal(err)
	}

	const name = "exactly-once"
	if err := admin.CreateStream(ctx, name, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := stale.StreamVersion(ctx, name); err != nil { // primes stale's map cache
		t.Fatal(err)
	}

	ups := []streamcount.Update{
		{Edge: streamcount.Edge{U: 1, V: 2}, Op: streamcount.Insert},
		{Edge: streamcount.Edge{U: 2, V: 3}, Op: streamcount.Insert},
	}
	key := newIdempotencyKey()
	keyedAppend := func(cl *Cluster) (int64, error) {
		var v int64
		err := cl.routed(ctx, name, func(c *Client) error {
			var e error
			v, e = c.appendKeyed(ctx, name, key, ups)
			return e
		})
		return v, err
	}

	v1, err := keyedAppend(stale)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != int64(len(ups)) {
		t.Fatalf("first keyed append at version %d, want %d", v1, len(ups))
	}

	// Move the stream off its owner; only admin learns the new map.
	wm, err := admin.ClusterMap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wm.Self = ""
	m, err := cluster.FromWire(wm)
	if err != nil {
		t.Fatal(err)
	}
	owner := m.Owner(name).ID
	target := ids[0]
	if target == owner {
		target = ids[1]
	}
	if _, err := admin.Transfer(ctx, name, target); err != nil {
		t.Fatal(err)
	}

	// The replay through the stale client must route old owner -> 421 ->
	// new owner and dedup, not double-publish.
	v2, err := keyedAppend(stale)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1 {
		t.Errorf("replayed keyed append acked version %d, want original %d", v2, v1)
	}
	if v, err := admin.StreamVersion(ctx, name); err != nil || v != v1 {
		t.Errorf("stream at version %d (err %v) after replay, want %d", v, err, v1)
	}

	// Routing through the redirect refreshed the stale client's map.
	stale.mu.Lock()
	cached := stale.m
	stale.mu.Unlock()
	if cached == nil || cached.Version < 2 {
		t.Errorf("stale client did not adopt the redirecting node's map (have %v)", cached)
	}

	// A fresh keyed append still lands exactly once on the new owner.
	v3, err := stale.Append(ctx, name, []streamcount.Update{{Edge: streamcount.Edge{U: 4, V: 5}, Op: streamcount.Insert}})
	if err != nil {
		t.Fatal(err)
	}
	if v3 != v1+1 {
		t.Errorf("fresh append at version %d, want %d", v3, v1+1)
	}
}
