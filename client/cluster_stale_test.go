package client

// Regression test for the stale-map redirect loop: a Cluster whose cached
// map and every node it visits all predate a routing flip used to chase
// wrong_node redirects in a circle until maxRouteHops ran out, because
// adopting the rejecting node's map (max-version-wins keeps the newest map
// the client has SEEN, not the newest that EXISTS) can never escape the
// loop. A second consecutive 421 for the same stream now drops the cached
// map and re-resolves from the seeds, which may hold a genuinely newer map.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"streamcount/internal/wire"
)

// fakeJSON writes v as a JSON response with the given status.
func fakeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// singleNodeMap is a cluster map whose only member owns every stream.
func singleNodeMap(version int64, id, addr string) wire.ClusterMap {
	return wire.ClusterMap{
		Version: version,
		Nodes:   []wire.ClusterNode{{ID: id, Addr: addr}},
		VNodes:  64,
	}
}

func TestClusterStaleMapLoopRefetchesFromSeed(t *testing.T) {
	const stream = "looped"

	// Node B: the stream's real owner after the flip. Answers stats.
	var bHits atomic.Int64
	nodeB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/streams/"+stream+"/stats" {
			bHits.Add(1)
			fakeJSON(w, http.StatusOK, wire.StreamInfo{Name: stream, N: 16, Version: 7, Appendable: true})
			return
		}
		fakeJSON(w, http.StatusNotFound, wire.Error{Error: "unexpected path " + r.URL.Path})
	}))
	defer nodeB.Close()

	// Node A: stuck on a pre-flip map that names itself the owner, so its
	// 421 redirects point back at A — the loop.
	var aURL atomic.Value // string; set after the server exists
	var aRejections atomic.Int64
	nodeA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		self, _ := aURL.Load().(string)
		if r.URL.Path == "/v1/cluster" {
			fakeJSON(w, http.StatusOK, singleNodeMap(1, "a", self))
			return
		}
		aRejections.Add(1)
		fakeJSON(w, http.StatusMisdirectedRequest, wire.Error{
			Error: "not the owner", Code: wire.CodeWrongNode,
			Owner: "a", OwnerAddr: self, ClusterVersion: 1,
		})
	}))
	defer nodeA.Close()
	aURL.Store(nodeA.URL)

	// Seed: serves the pre-flip map (stream -> A) on the first fetch and
	// the post-flip map (stream -> B) afterwards, the way a healthy member
	// that observed the flip would.
	var seedFetches atomic.Int64
	seed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster" {
			fakeJSON(w, http.StatusNotFound, wire.Error{Error: "seed only serves maps"})
			return
		}
		if seedFetches.Add(1) == 1 {
			fakeJSON(w, http.StatusOK, singleNodeMap(1, "a", nodeA.URL))
			return
		}
		fakeJSON(w, http.StatusOK, singleNodeMap(2, "b", nodeB.URL))
	}))
	defer seed.Close()

	cl, err := NewCluster([]string{seed.URL})
	if err != nil {
		t.Fatal(err)
	}

	// One routed call: map v1 sends it to A, A redirects to itself, and the
	// second consecutive 421 must trigger the seed refetch that lands on B.
	v, err := cl.StreamVersion(context.Background(), stream)
	if err != nil {
		t.Fatalf("routing never escaped the stale-map loop: %v", err)
	}
	if v != 7 {
		t.Errorf("stream version %d, want 7 (served by node B)", v)
	}
	if got := aRejections.Load(); got != 2 {
		t.Errorf("node A rejected %d requests, want exactly 2 before the seed refetch", got)
	}
	if got := bHits.Load(); got != 1 {
		t.Errorf("node B served %d requests, want 1", got)
	}
	if got := seedFetches.Load(); got != 2 {
		t.Errorf("seed served %d map fetches, want 2 (initial + post-loop refetch)", got)
	}

	// The refetched map is now the cached one: the next call goes straight
	// to B with no further rejections.
	if _, err := cl.StreamVersion(context.Background(), stream); err != nil {
		t.Fatal(err)
	}
	if got := aRejections.Load(); got != 2 {
		t.Errorf("follow-up call revisited node A (%d rejections)", got)
	}
	if got := bHits.Load(); got != 2 {
		t.Errorf("follow-up call missed node B (%d hits)", got)
	}
	cl.mu.Lock()
	cached := cl.m
	cl.mu.Unlock()
	if cached == nil || cached.Version != 2 {
		t.Errorf("cached map after recovery: %+v, want version 2", cached)
	}
}
