package client_test

// The local–remote symmetry contract: one test suite runs over both
// implementations of streamcount.Querier/Watcher — the in-process Engine
// and this package's Client fronting a real streamcountd server over
// httptest — and every observable (typed results, outcome fingerprints,
// watch event sequences, error sentinels) must match bit for bit. The suite
// records a transcript per target and the test ends by comparing the two
// transcripts as strings, so any asymmetry names the exact divergent line.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"streamcount"
	"streamcount/client"
	"streamcount/internal/server"
)

// target is one Querier/Watcher implementation under contract.
type target struct {
	w      streamcount.Watcher
	create func(t *testing.T, name string, n int64)
	append func(t *testing.T, stream string, ups []streamcount.Update) int64
}

func localTarget(t *testing.T) target {
	t.Helper()
	def, err := streamcount.NewAppendableStream(16, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := streamcount.NewEngine(def)
	t.Cleanup(func() { eng.Close() })
	return target{
		w: eng,
		create: func(t *testing.T, name string, n int64) {
			st, err := streamcount.NewAppendableStream(n, streamcount.AppendableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.RegisterStream(name, st); err != nil {
				t.Fatal(err)
			}
		},
		append: func(t *testing.T, stream string, ups []streamcount.Update) int64 {
			v, err := eng.Append(stream, ups)
			if err != nil {
				t.Fatal(err)
			}
			return v
		},
	}
}

func remoteTarget(t *testing.T) target {
	t.Helper()
	srv, err := server.New(server.Options{WatchHeartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return target{
		w: c,
		create: func(t *testing.T, name string, n int64) {
			if err := c.CreateStream(context.Background(), name, n); err != nil {
				t.Fatal(err)
			}
		},
		append: func(t *testing.T, stream string, ups []streamcount.Update) int64 {
			v, err := c.Append(context.Background(), stream, ups)
			if err != nil {
				t.Fatal(err)
			}
			return v
		},
	}
}

// contractEdges is the deterministic edge set both targets ingest.
func contractEdges(n int64, m int) []streamcount.Update {
	rng := rand.New(rand.NewSource(4242))
	seen := map[[2]int64]bool{}
	var ups []streamcount.Update
	for len(ups) < m {
		u, v := rng.Int63n(n), rng.Int63n(n)
		if u == v || seen[[2]int64{u, v}] || seen[[2]int64{v, u}] {
			continue
		}
		seen[[2]int64{u, v}] = true
		ups = append(ups, streamcount.Update{Edge: streamcount.Edge{U: u, V: v}, Op: streamcount.Insert})
	}
	return ups
}

// fpCount renders a count result bit-exactly for the transcript.
func fpCount(c *streamcount.CountResult) string {
	return fmt.Sprintf("value=%016x m=%d passes=%d queries=%d space=%d trials=%d",
		math.Float64bits(c.Value), c.M, c.Passes, c.Queries, c.SpaceWords, c.Trials)
}

// runContractSuite exercises one target and returns its transcript.
func runContractSuite(t *testing.T, tg target) []string {
	t.Helper()
	ctx := context.Background()
	var log []string
	record := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }

	const n, m = 60, 300
	tg.create(t, "s", n)
	ups := contractEdges(n, m)
	v := tg.append(t, "s", ups)
	record("appended to version %d", v)

	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}

	// Typed Do over the Querier interface: identical call, identical bits.
	est, err := streamcount.DoOn(ctx, tg.w, "s", streamcount.CountQuery(p,
		streamcount.WithTrials(600), streamcount.WithSeed(7)))
	if err != nil {
		t.Fatal(err)
	}
	record("count: %s", fpCount(est))

	// A derived-budget query exercises the ε/edge-bound defaulting on both
	// sides of the wire.
	est2, err := streamcount.DoOn(ctx, tg.w, "s", streamcount.CountQuery(p,
		streamcount.WithEpsilon(0.8), streamcount.WithLowerBound(100), streamcount.WithSeed(8)))
	if err != nil {
		t.Fatal(err)
	}
	record("derived: %s", fpCount(est2))

	// Untyped SubmitOn carries the pinned version.
	out, err := tg.w.SubmitOn(ctx, "s", streamcount.DistinguishQuery(p, 50,
		streamcount.WithTrials(400), streamcount.WithSeed(9)))
	if err != nil {
		t.Fatal(err)
	}
	record("distinguish: kind=%s version=%d above=%v estimate{%s}",
		out.Kind, out.StreamVersion, out.Decision.Above, fpCount(out.Decision.Estimate))

	// Sampling round-trips the copy's vertices and edges.
	smp, err := streamcount.DoOn(ctx, tg.w, "s", streamcount.SampleQuery(p,
		streamcount.WithTrials(2000), streamcount.WithSeed(10)))
	if err != nil {
		t.Fatal(err)
	}
	record("sample: found=%v vertices=%v edges=%v", smp.Found, smp.Copy.Vertices, smp.Copy.Edges)

	// Error symmetry: the same sentinels surface locally and across the
	// wire.
	if _, err := tg.w.SubmitOn(ctx, "missing", streamcount.CountQuery(p, streamcount.WithTrials(10))); !errors.Is(err, streamcount.ErrUnknownStream) {
		t.Errorf("unknown stream: %v, want ErrUnknownStream", err)
	}
	record("unknown stream -> ErrUnknownStream")
	if _, err := tg.w.WatchQuery(ctx, "missing", streamcount.CountQuery(p, streamcount.WithTrials(10))); !errors.Is(err, streamcount.ErrUnknownStream) {
		t.Errorf("watch unknown stream: %v, want ErrUnknownStream", err)
	}
	record("watch unknown stream -> ErrUnknownStream")

	// Standing query: create a fresh stream, watch every version, ingest
	// two batches, and fingerprint both events.
	tg.create(t, "w", n)
	sub, err := streamcount.Watch(ctx, tg.w, "w", streamcount.CountQuery(p,
		streamcount.WithTrials(500), streamcount.WithSeed(11)), streamcount.WatchEveryVersion())
	if err != nil {
		t.Fatal(err)
	}
	v1 := tg.append(t, "w", ups[:m/2])
	v2 := tg.append(t, "w", ups[m/2:])
	for i, wantV := range []int64{v1, v2} {
		select {
		case ev := <-sub.Events():
			if ev.Err != nil {
				t.Fatalf("watch event %d failed: %v", i, ev.Err)
			}
			record("watch[%d]: gen=%d version=%d %s", i, ev.Generation, ev.StreamVersion, fpCount(ev.Result))
			if ev.StreamVersion != wantV {
				t.Errorf("watch event %d at version %d, want %d", i, ev.StreamVersion, wantV)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("no watch event %d", i)
		}
	}
	// Consumer-side teardown: Close ends the stream with ErrWatchClosed.
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.Events(); ok {
		// A buffered final event is allowed; the channel must close after.
		if _, ok := <-sub.Events(); ok {
			t.Error("events still open after Close")
		}
	}
	if err := sub.Err(); !errors.Is(err, streamcount.ErrWatchClosed) {
		t.Errorf("closed watch Err = %v, want ErrWatchClosed", err)
	}
	record("close -> ErrWatchClosed")

	// Caller-context teardown: cancellation is a terminal ErrCanceled.
	wctx, cancel := context.WithCancel(ctx)
	sub2, err := streamcount.Watch(wctx, tg.w, "w", streamcount.CountQuery(p,
		streamcount.WithTrials(500), streamcount.WithSeed(12)))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	for range sub2.Events() {
	}
	if err := sub2.Err(); !errors.Is(err, streamcount.ErrCanceled) {
		t.Errorf("canceled watch Err = %v, want ErrCanceled", err)
	}
	record("ctx cancel -> ErrCanceled")

	return log
}

// TestQuerierContract runs the shared suite over both implementations and
// requires their transcripts — every result bit, every watch event, every
// error mapping — to be identical.
func TestQuerierContract(t *testing.T) {
	transcripts := map[string][]string{}
	t.Run("local", func(t *testing.T) {
		transcripts["local"] = runContractSuite(t, localTarget(t))
	})
	t.Run("remote", func(t *testing.T) {
		transcripts["remote"] = runContractSuite(t, remoteTarget(t))
	})
	local, remote := transcripts["local"], transcripts["remote"]
	if len(local) == 0 || len(remote) == 0 {
		t.Fatal("a suite produced no transcript")
	}
	if len(local) != len(remote) {
		t.Fatalf("transcript lengths differ: local %d, remote %d\nlocal: %v\nremote: %v",
			len(local), len(remote), local, remote)
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Errorf("transcript line %d diverges:\n  local:  %s\n  remote: %s", i, local[i], remote[i])
		}
	}
}
