package streamcount_test

// The incremental-evaluation half of the cross-process determinism suite
// (DESIGN.md §10): a watch served from the checkpoint cache — including
// events produced *after* the cache evicted and rebuilt the lane's index
// mid-stream — must deliver results bit-identical to standalone runs
// performed by a pristine process at the reported (seed, stream version).
// The cache is sized so two lanes cannot both stay resident, forcing LRU
// churn; if the fast path leaked any state across versions, seeds, or
// rebuilds, the child's fingerprints would diverge.

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"streamcount"
)

const (
	ckptXSeed   = 7
	ckptXTrials = 600
	ckptXNodes  = 2000
	ckptXEdges  = 8000 // one lane's index ~0.8 MiB: fits a 1 MiB cache alone, not twice
)

// ckptUpdates returns lane's deterministic insertion sequence. The two
// lanes get different graphs so a resident index can never accidentally
// serve the other lane.
func ckptUpdates(t testing.TB, lane string) []streamcount.Update {
	t.Helper()
	seed := int64(43)
	if lane == "b" {
		seed = 44
	}
	rng := rand.New(rand.NewSource(seed))
	g := streamcount.ErdosRenyi(rng, ckptXNodes, ckptXEdges)
	var ups []streamcount.Update
	for _, e := range g.Edges() {
		ups = append(ups, streamcount.Update{Edge: e, Op: streamcount.Insert})
	}
	return ups
}

func ckptLaneStream(t testing.TB, lane string) *streamcount.AppendableStream {
	t.Helper()
	app, err := streamcount.NewAppendableStream(ckptXNodes, streamcount.AppendableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestWatchCheckpointDeterminismChild rebuilds each lane's log and runs the
// reference query standalone at every requested (lane, version), printing
// one bit-exact fingerprint per entry. No engine, watch, or checkpoint
// machinery runs in this process.
func TestWatchCheckpointDeterminismChild(t *testing.T) {
	spec := os.Getenv("STREAMCOUNT_CKPT_CHILD")
	if spec == "" {
		t.Skip("child mode only (driven by TestWatchCheckpointDeterminismCrossProcess)")
	}
	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	apps := map[string]*streamcount.AppendableStream{}
	for _, lane := range []string{"a", "b"} {
		app := ckptLaneStream(t, lane)
		if _, err := app.Append(ckptUpdates(t, lane)); err != nil {
			t.Fatal(err)
		}
		apps[lane] = app
	}
	for _, field := range strings.Split(spec, ",") {
		lane, vStr, ok := strings.Cut(field, ":")
		if !ok || apps[lane] == nil {
			t.Fatalf("bad spec entry %q", field)
		}
		v, err := strconv.ParseInt(vStr, 10, 64)
		if err != nil {
			t.Fatalf("bad version in %q: %v", field, err)
		}
		view, err := apps[lane].At(v)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := streamcount.Run(context.Background(), view, streamcount.CountQuery(p,
			streamcount.WithTrials(ckptXTrials),
			streamcount.WithSeed(streamcount.WatchSeedAt(ckptXSeed, v))))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("CKPTCHILD %s:%d %s\n", lane, v, watchFingerprint(ref))
	}
}

// TestWatchCheckpointDeterminismCrossProcess drives two every-version
// watches over two lanes through a deliberately undersized checkpoint
// cache, proves the cache actually churned (each lane rebuilt after being
// evicted by the other), and then asks a pristine child process to
// reproduce every delivered event from nothing but (lane, version).
func TestWatchCheckpointDeterminismCrossProcess(t *testing.T) {
	if os.Getenv("STREAMCOUNT_CKPT_CHILD") != "" {
		t.Skip("already in child mode")
	}
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}

	p, err := streamcount.PatternByName("triangle")
	if err != nil {
		t.Fatal(err)
	}
	q := streamcount.CountQuery(p, streamcount.WithTrials(ckptXTrials), streamcount.WithSeed(ckptXSeed))

	appA := ckptLaneStream(t, "a")
	e := streamcount.NewEngine(appA, streamcount.WithWatchCheckpointMB(1))
	defer e.Close()
	appB := ckptLaneStream(t, "b")
	if err := e.RegisterStream("b", appB); err != nil {
		t.Fatal(err)
	}

	subs := map[string]*streamcount.Subscription[*streamcount.CountResult]{}
	for _, lane := range []string{"", "b"} {
		sub, err := streamcount.Watch(context.Background(), e, lane, q, streamcount.WatchEveryVersion())
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		key := lane
		if key == "" {
			key = "a"
		}
		subs[key] = sub
	}

	ups := map[string][]streamcount.Update{"a": ckptUpdates(t, "a"), "b": ckptUpdates(t, "b")}
	lanes := map[string]string{"a": "", "b": "b"} // sub key -> engine stream name

	// Front-load most of each stream so both indexes sit near full size
	// from the first event, then alternate small appends: every evaluation
	// of one lane evicts the other's index, so later events exercise the
	// evict → rebuild → extend path, not just warm hits.
	type fpEntry struct {
		lane string
		v    int64
		fp   string
	}
	var events []fpEntry
	n := len(ups["a"])
	cuts := []int{4 * n / 5, 17 * n / 20, 9 * n / 10, 19 * n / 20, n}
	prev := 0
	for _, cut := range cuts {
		for _, lane := range []string{"a", "b"} {
			v, err := e.Append(lanes[lane], ups[lane][prev:cut])
			if err != nil {
				t.Fatal(err)
			}
			select {
			case ev, ok := <-subs[lane].Events():
				if !ok || ev.Err != nil {
					t.Fatalf("lane %s watch ended early: %v (Err %v)", lane, subs[lane].Err(), ev.Err)
				}
				if ev.StreamVersion != v {
					t.Fatalf("lane %s event at version %d, want %d", lane, ev.StreamVersion, v)
				}
				events = append(events, fpEntry{lane, v, watchFingerprint(ev.Result)})
			case <-time.After(60 * time.Second):
				t.Fatalf("lane %s: timed out waiting for version %d", lane, v)
			}
		}
		prev = cut
	}

	// The churn must be real: each lane rebuilt at least once after being
	// evicted, and nothing fell back to the cold shared-replay path.
	if st := e.WatchCheckpointStats(); st.Evictions == 0 {
		t.Errorf("no evictions; cache stats %+v (capacity too large for this workload?)", st)
	}
	for lane, sub := range subs {
		st := sub.CheckpointStats()
		if st.CheckpointMisses < 2 {
			t.Errorf("lane %s misses = %d, want >= 2 (initial build plus post-eviction rebuild)", lane, st.CheckpointMisses)
		}
		if st.ColdReplays != 0 {
			t.Errorf("lane %s cold replays = %d, want 0", lane, st.ColdReplays)
		}
	}

	// A pristine process reproduces every event from (lane, version) alone.
	spec := make([]string, len(events))
	for i, ev := range events {
		spec[i] = fmt.Sprintf("%s:%d", ev.lane, ev.v)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestWatchCheckpointDeterminismChild$", "-test.v")
	cmd.Env = append(os.Environ(), "STREAMCOUNT_CKPT_CHILD="+strings.Join(spec, ","))
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}
	theirs := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		rest, ok := strings.CutPrefix(sc.Text(), "CKPTCHILD ")
		if !ok {
			continue
		}
		key, fp, ok := strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("malformed child line %q", sc.Text())
		}
		theirs[key] = fp
	}
	if len(theirs) != len(events) {
		t.Fatalf("child reproduced %d entries, want %d:\n%s", len(theirs), len(events), out)
	}
	for _, ev := range events {
		key := fmt.Sprintf("%s:%d", ev.lane, ev.v)
		if theirs[key] != ev.fp {
			t.Errorf("cross-process mismatch at %s:\n  watch event:   %s\n  child process: %s", key, ev.fp, theirs[key])
		}
	}
	t.Logf("verified %d checkpoint-served watch events (with mid-stream eviction) against a pristine process", len(events))
}
