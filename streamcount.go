package streamcount

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"streamcount/internal/core"
	"streamcount/internal/exact"
	"streamcount/internal/gen"
	"streamcount/internal/graph"
	"streamcount/internal/pattern"
	"streamcount/internal/stream"
)

// Re-exported core types. The facade keeps downstream users on one import
// path while the implementation lives in focused internal packages.
type (
	// Pattern is a constant-size target subgraph H.
	Pattern = pattern.Pattern
	// Graph is an in-memory simple undirected graph.
	Graph = graph.Graph
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Update is one stream element (edge insert or delete).
	Update = stream.Update
	// Stream is a replayable multi-pass edge stream.
	Stream = stream.Stream
	// AppendableStream is a versioned, append-only edge log for live
	// ingestion: Append publishes updates and returns the new version, and
	// At(v) returns the immutable length-v prefix as a StreamView. Register
	// one on an Engine to ingest and query concurrently — each admission
	// generation pins the version current at its barrier (DESIGN.md §7).
	AppendableStream = stream.Appendable
	// AppendableOptions configures NewAppendableStream (segment size,
	// optional on-disk segment directory).
	AppendableOptions = stream.AppendableOptions
	// StreamView is an immutable pinned prefix of an AppendableStream. It is
	// a Stream: every pass replays the identical update sequence regardless
	// of concurrent appends.
	StreamView = stream.View
	// AppendReceipt is one recovered idempotency-key receipt of a durable
	// AppendableStream: the key plus the acknowledgment its AppendKeyed
	// returned. OpenAppendableStream surfaces, via Receipts, exactly the
	// keyed appends whose batches survived the kill, so a server can rebuild
	// its dedup registry and replay receipts to retried ingests.
	AppendReceipt = stream.Receipt
	// SampledCopy is a uniformly sampled copy of H.
	SampledCopy = core.SampledCopy
)

// Legacy pre-query-API types, kept so existing callers keep compiling while
// they migrate to the typed constructors (CountQuery, SampleQuery, ...) and
// functional options.
type (
	// Config configures the deprecated Estimate and Sample wrappers.
	//
	// Deprecated: build queries with CountQuery / SampleQuery / AutoQuery /
	// DistinguishQuery and options (WithTrials, WithEpsilon, WithSeed, ...).
	Config = core.Config
	// CliqueConfig configures the deprecated EstimateCliques wrapper.
	//
	// Deprecated: use CliqueQuery with WithLambda / WithLowerBound /
	// WithEpsilon.
	CliqueConfig = core.CliqueConfig
	// Result is the old name of CountResult.
	//
	// Deprecated: use CountResult.
	Result = core.CountResult
	// Session binds many jobs to one stream and serves all rounds they are
	// concurrently waiting on with shared passes (DESIGN.md §2.5).
	//
	// Deprecated: use an Engine — it serves the same shared replays
	// continuously (queries may be submitted at any time, with contexts)
	// instead of in one pre-declared single-shot batch.
	Session = core.Session
	// Job describes one unit of work submitted to a Session.
	//
	// Deprecated: build a typed Query with the constructors and submit it to
	// an Engine.
	Job = core.Job
	// JobKind selects which algorithm a Job runs.
	//
	// Deprecated: the query constructors carry the kind; JobKind only exists
	// for the legacy Session path.
	JobKind = core.JobKind
	// JobHandle tracks a submitted job; read its result after Session.Run.
	//
	// Deprecated: Engine.Submit and Do return results directly.
	JobHandle = core.JobHandle
	// JobResult is the outcome of one session job.
	//
	// Deprecated: the typed results (CountResult, SampleResult,
	// DistinguishResult) replace the one-of JobResult.
	JobResult = core.JobResult
)

// Session job kinds.
//
// Deprecated: only meaningful with the legacy Session path; the query
// constructors replace them.
const (
	// JobEstimate runs the 3-pass FGP counter (Estimate).
	JobEstimate = core.JobEstimate
	// JobSample draws one uniform copy of H (Sample).
	JobSample = core.JobSample
	// JobCliques runs the 5r-pass ERS clique counter (EstimateCliques).
	JobCliques = core.JobCliques
	// JobAuto runs the geometric lower-bound search (EstimateAuto).
	JobAuto = core.JobAuto
	// JobDistinguish runs the decision variant (Distinguish).
	JobDistinguish = core.JobDistinguish
)

// NewSession creates a single-shot session over st: submit any mix of jobs,
// call Run once, then read each handle's result. Every job's answer is
// bit-identical to the same job run standalone, while a session of K jobs
// costs only max-rounds shared passes over the stream instead of the sum.
//
// Deprecated: use NewEngine — the Engine serves the same shared replays as
// a long-lived service (Submit at any time, contexts and cancellation,
// admission batching) instead of a one-shot batch.
func NewSession(st Stream) *Session { return core.NewSession(st) }

// Stream update operations.
const (
	Insert = stream.Insert
	Delete = stream.Delete
)

// PatternByName resolves catalog patterns: "triangle", "C<k>", "K<r>",
// "S<k>", "P<k>", "paw", "diamond".
func PatternByName(name string) (*Pattern, error) { return pattern.ByName(name) }

// NewPattern builds a custom pattern on n vertices from an edge list.
func NewPattern(name string, n int, edges [][2]int) (*Pattern, error) {
	return pattern.New(name, n, edges)
}

// NewStream builds an in-memory stream over n vertices, validating updates.
func NewStream(n int64, updates []Update) (Stream, error) { return stream.NewSlice(n, updates) }

// NewAppendableStream creates an empty versioned append-only stream over n
// vertices. With AppendableOptions.Dir set the log is durable: every
// acknowledged append is written to the tail segment file first, sealed
// segments are flushed to disk and evicted from memory (so the log can
// outgrow RAM), and a checksummed manifest tracks the sealed prefix —
// reopen the directory after a crash with OpenAppendableStream. Appends, At
// views and replays are safe to use concurrently.
func NewAppendableStream(n int64, opts AppendableOptions) (*AppendableStream, error) {
	return stream.NewAppendable(n, opts)
}

// OpenAppendableStream rebuilds a durable appendable stream from the
// segment directory a previous (possibly killed) process wrote: the
// checksummed manifest is verified (ErrManifestCorrupt on mismatch), sealed
// segments are validated (ErrSegmentCorrupt on contradiction), fully
// written segments missing from the manifest are recovered by a forward
// scan, and a torn tail is truncated to its last valid record. Every
// version the recovered log reports replays bit-identically to the prefix
// the previous process served at that version.
func OpenAppendableStream(dir string, opts AppendableOptions) (*AppendableStream, error) {
	return stream.OpenAppendable(dir, opts)
}

// StreamFromGraph turns a graph into an insertion-only stream.
func StreamFromGraph(g *Graph) Stream { return stream.FromGraph(g) }

// TurnstileFromGraph builds a turnstile stream whose final graph is g:
// every edge of g inserted plus extra·m decoy edges inserted and later
// deleted, interleaved at random.
func TurnstileFromGraph(g *Graph, extra float64, rng *rand.Rand) Stream {
	return stream.WithDeletions(g, extra, rng)
}

// ShuffledStream returns an in-memory copy of st with updates permuted
// (per-edge order preserved for turnstile streams, so the stream stays
// well-formed). Streams that are not already in memory — e.g. file-backed
// streams from OpenStreamFile — are materialized with one pass first; the
// error reports a failed replay.
func ShuffledStream(st Stream, rng *rand.Rand) (Stream, error) {
	sl, err := stream.Collect(st)
	if err != nil {
		return nil, fmt.Errorf("streamcount: cannot shuffle stream: %w", err)
	}
	return stream.Shuffled(sl, rng), nil
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int64) *Graph { return graph.New(n) }

// ReadGraph parses the "n m" + edge-list format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// legacyOpts lowers a legacy Config to query options with the exact
// pre-query-API defaulting (no ε or edge-bound defaults at this layer).
func legacyOpts(cfg Config) queryOpts {
	return queryOpts{
		trials:      cfg.Trials,
		maxTrials:   cfg.MaxTrials,
		epsilon:     cfg.Epsilon,
		lowerBound:  cfg.LowerBound,
		edgeBound:   cfg.EdgeBound,
		seed:        cfg.Seed,
		parallelism: cfg.Parallelism,
		legacy:      true,
	}
}

// Estimate runs the paper's 3-pass subgraph counting algorithm (Theorem 17
// on insertion-only streams, Theorem 1 on turnstile streams).
//
// Deprecated: use Run with CountQuery — it adds context cancellation and
// uniform option defaults:
//
//	streamcount.Run(ctx, st, streamcount.CountQuery(p, streamcount.WithTrials(n)))
func Estimate(st Stream, cfg Config) (*Result, error) {
	return Run(context.Background(), st, countQuery{p: cfg.Pattern, o: legacyOpts(cfg)})
}

// Sample draws one uniformly random copy of H in 3 passes (Lemma 16/18).
//
// Deprecated: use Run with SampleQuery.
func Sample(st Stream, cfg Config) (SampledCopy, bool, error) {
	r, err := Run(context.Background(), st, sampleQuery{p: cfg.Pattern, o: legacyOpts(cfg)})
	if err != nil {
		return SampledCopy{}, false, err
	}
	return r.Copy, r.Found, nil
}

// EstimateCliques runs the 5r-pass low-degeneracy clique counter
// (Theorem 2).
//
// Deprecated: use Run with CliqueQuery (WithLambda, WithLowerBound).
func EstimateCliques(st Stream, cfg CliqueConfig) (*Result, error) {
	return Run(context.Background(), st, cliqueQuery{legacyCfg: &cfg})
}

// EstimateAuto is Estimate without a known lower bound on #H: it performs a
// geometric search over guesses (cf. Lemma 21), at 3 passes per guess.
//
// Deprecated: use Run with AutoQuery. Note AutoQuery defaults ε to 0.1 like
// every other query; this legacy path defaults it to 0.2.
func EstimateAuto(st Stream, cfg Config) (*Result, error) {
	return Run(context.Background(), st, autoQuery{p: cfg.Pattern, o: legacyOpts(cfg)})
}

// Distinguish reports whether #H >= (1+eps)·l rather than <= l — the
// paper's decision phrasing of the problem (§1.1).
//
// Deprecated: use Run with DistinguishQuery.
func Distinguish(st Stream, cfg Config, l float64) (bool, *Result, error) {
	r, err := Run(context.Background(), st, distinguishQuery{p: cfg.Pattern, l: l, o: legacyOpts(cfg)})
	if err != nil {
		return false, nil, err
	}
	return r.Above, r.Estimate, nil
}

// OpenStreamFile opens a file-backed update stream ("n" header, then
// "+ u v"/"- u v" lines) replayed from disk on each pass.
func OpenStreamFile(path string) (Stream, error) { return stream.OpenFile(path) }

// TrialsFor returns the instance count Theorem 17/1 prescribes for m edges,
// edge-cover exponent rho, accuracy eps and lower bound l on #H.
func TrialsFor(m int64, rho float64, eps, l float64) int { return core.TrialsFor(m, rho, eps, l) }

// ExactCount counts #H in an in-memory graph exactly (ground truth).
func ExactCount(g *Graph, p *Pattern) int64 { return exact.Count(g, p) }

// Degeneracy returns the degeneracy λ of g and a degeneracy ordering.
func Degeneracy(g *Graph) (int64, []int64) { return graph.Degeneracy(g) }

// Generators re-exported for examples and experiments.

// ErdosRenyi returns a uniform graph with n vertices and m edges.
func ErdosRenyi(rng *rand.Rand, n, m int64) *Graph { return gen.ErdosRenyiGNM(rng, n, m) }

// BarabasiAlbert returns a preferential-attachment graph with degeneracy k.
func BarabasiAlbert(rng *rand.Rand, n, k int64) *Graph { return gen.BarabasiAlbert(rng, n, k) }
