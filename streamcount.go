package streamcount

import (
	"fmt"
	"io"
	"math/rand"

	"streamcount/internal/core"
	"streamcount/internal/exact"
	"streamcount/internal/gen"
	"streamcount/internal/graph"
	"streamcount/internal/pattern"
	"streamcount/internal/stream"
)

// Re-exported core types. The facade keeps downstream users on one import
// path while the implementation lives in focused internal packages.
type (
	// Pattern is a constant-size target subgraph H.
	Pattern = pattern.Pattern
	// Graph is an in-memory simple undirected graph.
	Graph = graph.Graph
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Update is one stream element (edge insert or delete).
	Update = stream.Update
	// Stream is a replayable multi-pass edge stream.
	Stream = stream.Stream
	// Config configures Estimate and Sample.
	Config = core.Config
	// CliqueConfig configures EstimateCliques.
	CliqueConfig = core.CliqueConfig
	// Result is a counting outcome with pass/space accounting.
	Result = core.Estimate
	// SampledCopy is a uniformly sampled copy of H.
	SampledCopy = core.SampledCopy
	// Session binds many jobs to one stream and serves all rounds they are
	// concurrently waiting on with shared passes (DESIGN.md §2.5).
	Session = core.Session
	// Job describes one unit of work submitted to a Session.
	Job = core.Job
	// JobKind selects which algorithm a Job runs.
	JobKind = core.JobKind
	// JobHandle tracks a submitted job; read its result after Session.Run.
	JobHandle = core.JobHandle
	// JobResult is the outcome of one session job.
	JobResult = core.JobResult
)

// Session job kinds.
const (
	// JobEstimate runs the 3-pass FGP counter (Estimate).
	JobEstimate = core.JobEstimate
	// JobSample draws one uniform copy of H (Sample).
	JobSample = core.JobSample
	// JobCliques runs the 5r-pass ERS clique counter (EstimateCliques).
	JobCliques = core.JobCliques
	// JobAuto runs the geometric lower-bound search (EstimateAuto).
	JobAuto = core.JobAuto
	// JobDistinguish runs the decision variant (Distinguish).
	JobDistinguish = core.JobDistinguish
)

// NewSession creates a session over st. Submit any mix of jobs, call Run
// once, then read each handle's result: every job's answer is bit-identical
// to the same job run standalone, while a session of K jobs costs only
// max-rounds shared passes over the stream instead of the sum — N concurrent
// queries no longer cost N× the stream I/O.
func NewSession(st Stream) *Session { return core.NewSession(st) }

// Stream update operations.
const (
	Insert = stream.Insert
	Delete = stream.Delete
)

// PatternByName resolves catalog patterns: "triangle", "C<k>", "K<r>",
// "S<k>", "P<k>", "paw", "diamond".
func PatternByName(name string) (*Pattern, error) { return pattern.ByName(name) }

// NewPattern builds a custom pattern on n vertices from an edge list.
func NewPattern(name string, n int, edges [][2]int) (*Pattern, error) {
	return pattern.New(name, n, edges)
}

// NewStream builds an in-memory stream over n vertices, validating updates.
func NewStream(n int64, updates []Update) (Stream, error) { return stream.NewSlice(n, updates) }

// StreamFromGraph turns a graph into an insertion-only stream.
func StreamFromGraph(g *Graph) Stream { return stream.FromGraph(g) }

// TurnstileFromGraph builds a turnstile stream whose final graph is g:
// every edge of g inserted plus extra·m decoy edges inserted and later
// deleted, interleaved at random.
func TurnstileFromGraph(g *Graph, extra float64, rng *rand.Rand) Stream {
	return stream.WithDeletions(g, extra, rng)
}

// ShuffledStream returns an in-memory copy of st with updates permuted
// (per-edge order preserved for turnstile streams, so the stream stays
// well-formed). Streams that are not already in memory — e.g. file-backed
// streams from OpenStreamFile — are materialized with one pass first; the
// error reports a failed replay.
func ShuffledStream(st Stream, rng *rand.Rand) (Stream, error) {
	sl, err := stream.Collect(st)
	if err != nil {
		return nil, fmt.Errorf("streamcount: cannot shuffle stream: %w", err)
	}
	return stream.Shuffled(sl, rng), nil
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int64) *Graph { return graph.New(n) }

// ReadGraph parses the "n m" + edge-list format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// Estimate runs the paper's 3-pass subgraph counting algorithm (Theorem 17
// on insertion-only streams, Theorem 1 on turnstile streams).
func Estimate(st Stream, cfg Config) (*Result, error) { return core.EstimateSubgraphs(st, cfg) }

// Sample draws one uniformly random copy of H in 3 passes (Lemma 16/18).
func Sample(st Stream, cfg Config) (SampledCopy, bool, error) { return core.SampleSubgraph(st, cfg) }

// EstimateCliques runs the 5r-pass low-degeneracy clique counter
// (Theorem 2).
func EstimateCliques(st Stream, cfg CliqueConfig) (*Result, error) {
	return core.EstimateCliques(st, cfg)
}

// EstimateAuto is Estimate without a known lower bound on #H: it performs a
// geometric search over guesses (cf. Lemma 21), at 3 passes per guess.
func EstimateAuto(st Stream, cfg Config) (*Result, error) {
	return core.EstimateSubgraphsAuto(st, cfg)
}

// Distinguish reports whether #H >= (1+eps)·l rather than <= l — the
// paper's decision phrasing of the problem (§1.1).
func Distinguish(st Stream, cfg Config, l float64) (bool, *Result, error) {
	return core.Distinguish(st, cfg, l)
}

// OpenStreamFile opens a file-backed update stream ("n" header, then
// "+ u v"/"- u v" lines) replayed from disk on each pass.
func OpenStreamFile(path string) (Stream, error) { return stream.OpenFile(path) }

// TrialsFor returns the instance count Theorem 17/1 prescribes for m edges,
// edge-cover exponent rho, accuracy eps and lower bound l on #H.
func TrialsFor(m int64, rho float64, eps, l float64) int { return core.TrialsFor(m, rho, eps, l) }

// ExactCount counts #H in an in-memory graph exactly (ground truth).
func ExactCount(g *Graph, p *Pattern) int64 { return exact.Count(g, p) }

// Degeneracy returns the degeneracy λ of g and a degeneracy ordering.
func Degeneracy(g *Graph) (int64, []int64) { return graph.Degeneracy(g) }

// Generators re-exported for examples and experiments.

// ErdosRenyi returns a uniform graph with n vertices and m edges.
func ErdosRenyi(rng *rand.Rand, n, m int64) *Graph { return gen.ErdosRenyiGNM(rng, n, m) }

// BarabasiAlbert returns a preferential-attachment graph with degeneracy k.
func BarabasiAlbert(rng *rand.Rand, n, k int64) *Graph { return gen.BarabasiAlbert(rng, n, k) }
